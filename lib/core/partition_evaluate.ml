module Obs = Soctam_obs.Obs
module Odometer = Soctam_partition.Enumerate.Odometer
module Pool = Soctam_util.Pool
module Shared_min = Soctam_util.Pool.Shared_min

type b_stats = {
  tams : int;
  unique_partitions : int;
  enumerated : int;
  completed : int;
  tau_terminated : int;
  best_time : int option;
}

let efficiency s =
  if s.unique_partitions = 0 then 0.
  else float_of_int s.completed /. float_of_int s.unique_partitions

type result = {
  widths : int array;
  time : int;
  assignment : int array;
  per_b : b_stats array;
  outcome : Outcome.t;
}

type best = {
  mutable b_widths : int array;
  mutable b_time : int;
  mutable b_assignment : int array;
}

(* Flush one slice's local counters into the collector. Called at
   slice / chunk granularity, so the per-partition hot loop stays free
   of collector traffic (see the [Obs] design notes). *)
let flush_counters stats ~enumerated ~pruned ~evaluated ~ca =
  if Obs.enabled stats then begin
    Obs.add stats ~n:enumerated "partition/enumerated";
    Obs.add stats ~n:pruned "partition/pruned";
    Obs.add stats ~n:evaluated "partition/evaluated";
    match ca with
    | None -> ()
    | Some (c : Core_assign.stats) ->
        Obs.add stats ~n:c.Core_assign.tried "core_assign/assignments_tried";
        Obs.add stats ~n:c.Core_assign.early_terminations
          "core_assign/early_terminations";
        Obs.add stats ~n:c.Core_assign.levels_cut "core_assign/levels_cut"
  end

let ca_stats stats =
  if Obs.enabled stats then Some (Core_assign.stats ()) else None

(* -- slice evaluation ------------------------------------------------------ *)

(* Everything a slice [lo, hi) of one TAM count's rank sequence reports
   back to the engine: the pruning split, the per-B best, and the
   solver-owned work counters the checkpoint must carry so a resumed
   run's totals match an uninterrupted one. *)
type slice = {
  sl_enumerated : int;
  sl_completed : int;
  sl_pruned : int;
  sl_best_time : int option;
  sl_tried : int;
  sl_early : int;
  sl_levels : int;
  sl_publications : int;
}

let merge_best_time a b =
  match (a, b) with None, t | t, None -> t | Some x, Some y -> Some (min x y)

(* The best candidate found inside one contiguous rank chunk. [c_rank] is
   the global lexicographic rank of [c_widths]: the reduction over chunks
   minimizes (time, rank), which reproduces the sequential "first strict
   improvement in enumeration order" winner no matter how chunk
   completions interleave. *)
type chunk_best = {
  mutable c_time : int;
  mutable c_rank : int;
  mutable c_widths : int array;
  mutable c_assignment : int array;
}

type chunk_result = {
  ch_enumerated : int;
  ch_completed : int;
  ch_tau_terminated : int;
  ch_best_time : int option;
  ch_best : chunk_best;
  ch_tried : int;
  ch_early : int;
  ch_levels : int;
}

(* Per-worker evaluation state: one slot per team worker, created per
   slice, reused across every chunk that worker runs within the slice.
   This is what the work-stealing scheduler's per-slot exclusivity
   guarantee buys: the odometer, the assignment scratch and the tau
   mirror are allocated once per slice instead of once per chunk (or,
   before this design, once per partition for the scratch). *)
type wstate = {
  mutable w_odo : Odometer.t option;
  mutable w_pos : int;  (* global rank [w_odo] points at; -1 = unknown *)
  w_scratch : Core_assign.scratch;
  w_mirror : Shared_min.mirror;
}

(* Point the worker's odometer at [lo]: free when the chunk continues
   where the previous one ended (the owner's common case), an
   allocation-free [reposition] after a steal, a fresh [create_at] only
   on the worker's first chunk of the slice. *)
let aim_odometer st ~total_width ~tams ~lo =
  match st.w_odo with
  | Some o when st.w_pos = lo -> Some o
  | Some o ->
      if Odometer.reposition o ~rank:lo then begin
        st.w_pos <- lo;
        Some o
      end
      else None
  | None -> (
      match Odometer.create_at ~total:total_width ~parts:tams ~rank:lo with
      | Some o ->
          st.w_odo <- Some o;
          st.w_pos <- lo;
          Some o
      | None -> None)

(* One worker's chunk of a TAM count: evaluate the partitions of global
   rank [lo .. hi-1]. The early-exit threshold depends on the team
   size. Alone ([prune_ties]), the threshold is the bound itself — a
   tie's rank is always larger than the incumbent's, the paper's
   sequential Figure 3 behavior. Racing, the threshold is [bound + 1]:
   a partition that merely ties must still complete, because the
   deterministic (time, rank) reduction needs its rank, which is
   exactly the information a racing worker lacks about its peers.

   [cap] is a foreign bound ([Run_config.tau_import]; [max_int] = none):
   the threshold is capped at [cap + 1], not [cap] — a candidate that
   merely ties an imported bound must still complete, at {e every} team
   size, because it is this engine's only way to establish an incumbent
   of its own at the imported quality (the bound itself is never
   reported). Without the tie the final exact polish would have nothing
   to improve whenever a rival engine reaches the heuristic optimum
   first, and a portfolio race could end worse than this engine run
   solo. Once an own tie has completed, the own [bound] equals [cap]
   and the usual team-size rule takes over. *)
let evaluate_chunk ?(stats = Obs.null) ~state ~prune_ties ~cap ~table
    ~total_width ~tams ~lo ~hi () =
  let enumerated = ref 0 in
  let completed = ref 0 in
  let tau_terminated = ref 0 in
  (* [max_int] = "no completion yet": an int sentinel rather than an
     [int option] so the per-partition loop below never allocates. *)
  let best_time_b = ref max_int in
  let ca = ca_stats stats in
  let mir = state.w_mirror in
  let cb =
    { c_time = max_int; c_rank = max_int; c_widths = [||]; c_assignment = [||] }
  in
  (match aim_odometer state ~total_width ~tams ~lo with
  | None -> ()
  | Some odometer ->
      (for rank = lo to hi - 1 do
         let widths = Odometer.current odometer in
         incr enumerated;
         let bound = Shared_min.mirror_get mir in
         let threshold =
           let t =
             if prune_ties then bound
             else if bound = max_int then max_int
             else bound + 1
           in
           let c = if cap = max_int then max_int else cap + 1 in
           if c < t then c else t
         in
         (match
            Core_assign.run_table_direct ?stats:ca ~scratch:state.w_scratch
              ~best:threshold ~table ~widths ()
          with
         | Core_assign.Exceeded _ -> incr tau_terminated
         | Core_assign.Assigned { assignment; time; _ } ->
             incr completed;
             (* The pre-read [bound] makes the improvement test racy
                under contention, but a trace event is an observation,
                not a reduction input: at worst a tie between racing
                workers is reported as an improvement by both. *)
             if time < bound then Obs.event_v stats time "tau";
             Shared_min.mirror_improve mir time;
             if time < !best_time_b then best_time_b := time;
             (* Ranks increase within the chunk, so a strict comparison
                keeps the lowest-rank partition among equal times. *)
             if time < cb.c_time then
               ((cb.c_time <- time;
                 cb.c_rank <- rank;
                 cb.c_widths <- Array.copy widths;
                 cb.c_assignment <- Array.copy assignment)
               [@soctam.allow "ALLOC-HOT"] (* rare improvement path *)));
         (* Advance through the last rank too, so the odometer already
            points at [hi] when the next owner chunk begins there. The
            advance can only be refused at the very end of the whole
            enumeration, where no later chunk of this slice exists. *)
         ignore (Odometer.advance odometer)
       done)
      [@soctam.hot];
      state.w_pos <- hi);
  flush_counters stats ~enumerated:!enumerated ~pruned:!tau_terminated
    ~evaluated:!completed ~ca;
  {
    ch_enumerated = !enumerated;
    ch_completed = !completed;
    ch_tau_terminated = !tau_terminated;
    ch_best_time = (if !best_time_b = max_int then None else Some !best_time_b);
    ch_best = cb;
    ch_tried = (match ca with None -> 0 | Some c -> c.Core_assign.tried);
    ch_early =
      (match ca with None -> 0 | Some c -> c.Core_assign.early_terminations);
    ch_levels = (match ca with None -> 0 | Some c -> c.Core_assign.levels_cut);
  }

(* One slice on the work-stealing team — the only evaluation path, at
   every team size: carve [lo, hi) into adaptive chunks, prune against
   the shared bound through per-worker mirrors, and reduce the chunk
   winners to the minimum by (time, rank), which reproduces the
   first-strict-improvement-in-enumeration-order winner no matter how
   steals and completions interleave. With one worker the chunks are
   consumed in rank order by a single exact mirror, so the evaluation
   sequence — thresholds, prunes, improvements — is byte-identical to
   the historical dedicated sequential path this replaced. *)
let evaluate_slice ?(stats = Obs.null) ~team ~cap ~table ~total_width ~tams
    ~tau ~lo ~hi best =
  let shared = Shared_min.create !tau in
  let size = Pool.Team.size team in
  let prune_ties = size = 1 in
  let states =
    Array.init size (fun _ ->
        {
          w_odo = None;
          w_pos = -1;
          w_scratch = Core_assign.scratch ();
          w_mirror = Shared_min.mirror shared;
        })
  in
  let chunks =
    Obs.span stats "partition/evaluate_b" (fun () ->
        Pool.map_chunks ~stats team ~length:(hi - lo)
          ~f:(fun ~worker ~lo:clo ~hi:chi ->
            (evaluate_chunk ~stats ~state:states.(worker) ~prune_ties ~cap
               ~table ~total_width ~tams ~lo:(lo + clo) ~hi:(lo + chi) ()
             [@soctam.allow "DOM-ESCAPE"]
             (* [states] is indexed by the worker slot, and the
                scheduler runs at most one chunk per slot at a time:
                each element is effectively worker-local. *)))
          ())
  in
  tau := Shared_min.get shared;
  let publications = Shared_min.publications shared in
  Obs.add stats ~n:publications "pool/tau_publications";
  (* Deterministic reduction: chunks arrive sorted by rank, so scanning
     left to right with strict comparisons yields the minimum
     (time, rank) candidate — byte-identical to the jobs = 1 winner. *)
  let winner =
    Array.fold_left
      (fun acc (chunk : chunk_result Pool.chunk) ->
        let cb = chunk.Pool.c_value.ch_best in
        if Array.length cb.c_widths = 0 then acc
        else
          match acc with
          | Some b
            when b.c_time < cb.c_time
                 || (b.c_time = cb.c_time && b.c_rank < cb.c_rank) ->
              Some b
          | Some _ | None -> Some cb)
      None chunks
  in
  (match winner with
  | Some cb when cb.c_time < best.b_time ->
      best.b_time <- cb.c_time;
      best.b_widths <- cb.c_widths;
      best.b_assignment <- cb.c_assignment
  | Some _ | None -> ());
  let sum f =
    Array.fold_left (fun acc c -> acc + f c.Pool.c_value) 0 chunks
  in
  {
    sl_enumerated = sum (fun c -> c.ch_enumerated);
    sl_completed = sum (fun c -> c.ch_completed);
    sl_pruned = sum (fun c -> c.ch_tau_terminated);
    sl_best_time =
      Array.fold_left
        (fun acc c -> merge_best_time acc c.Pool.c_value.ch_best_time)
        None chunks;
    sl_tried = sum (fun c -> c.ch_tried);
    sl_early = sum (fun c -> c.ch_early);
    sl_levels = sum (fun c -> c.ch_levels);
    sl_publications = publications;
  }

(* -- checkpoint engine ----------------------------------------------------- *)

(* Mutable progress through one TAM count. *)
type eng_b = {
  g_tams : int;
  g_unique : int;
  mutable g_next : int;
  mutable g_enumerated : int;
  mutable g_completed : int;
  mutable g_pruned : int;
  mutable g_best_time : int option;
}

let fresh_b ~total_width tams =
  {
    g_tams = tams;
    g_unique = Soctam_partition.Count.exact ~total:total_width ~parts:tams;
    g_next = 0;
    g_enumerated = 0;
    g_completed = 0;
    g_pruned = 0;
    g_best_time = None;
  }

let cursor_of_eng g =
  {
    Checkpoint.bc_tams = g.g_tams;
    bc_next_rank = g.g_next;
    bc_enumerated = g.g_enumerated;
    bc_completed = g.g_completed;
    bc_pruned = g.g_pruned;
    bc_best_time = g.g_best_time;
  }

let eng_of_cursor ~total_width (c : Checkpoint.b_cursor) =
  {
    g_tams = c.Checkpoint.bc_tams;
    g_unique =
      Soctam_partition.Count.exact ~total:total_width
        ~parts:c.Checkpoint.bc_tams;
    g_next = c.Checkpoint.bc_next_rank;
    g_enumerated = c.Checkpoint.bc_enumerated;
    g_completed = c.Checkpoint.bc_completed;
    g_pruned = c.Checkpoint.bc_pruned;
    g_best_time = c.Checkpoint.bc_best_time;
  }

let b_stats_of_eng g =
  {
    tams = g.g_tams;
    unique_partitions = g.g_unique;
    enumerated = g.g_enumerated;
    completed = g.g_completed;
    tau_terminated = g.g_pruned;
    best_time = g.g_best_time;
  }

(* Work counters the checkpoint carries beyond the per-B cursors:
   restored from a resume token, grown by every slice, replayed into the
   collector so final totals equal an uninterrupted run's. *)
type extras = {
  mutable x_tried : int;
  mutable x_early : int;
  mutable x_levels : int;
  mutable x_publications : int;
}

let restore_check cond msg = if not cond then invalid_arg msg

let restore_pe ~cfg ~total_width ~b_values (cp : Checkpoint.t) =
  match cp.Checkpoint.state with
  | Checkpoint.Partition_evaluate s ->
      restore_check
        (s.Checkpoint.pe_total_width = total_width)
        "Partition_evaluate: resume checkpoint is for a different total \
         width";
      restore_check
        (s.Checkpoint.pe_carry_tau = cfg.Run_config.carry_tau
        && s.Checkpoint.pe_initial = cfg.Run_config.initial_best)
        "Partition_evaluate: resume checkpoint was taken under a different \
         pruning configuration";
      (match (cp.Checkpoint.soc, cfg.Run_config.soc_name) with
      | Some a, Some b ->
          restore_check (String.equal a b)
            "Partition_evaluate: resume checkpoint is for a different SOC"
      | _ -> ());
      let plan =
        List.map (fun c -> c.Checkpoint.bc_tams) s.Checkpoint.pe_done
        @ (match s.Checkpoint.pe_cursor with
          | Some c -> [ c.Checkpoint.bc_tams ]
          | None -> [])
        @ s.Checkpoint.pe_pending
      in
      restore_check (plan = b_values)
        "Partition_evaluate: resume checkpoint does not match this run's TAM \
         plan";
      s
  | Checkpoint.Exhaustive _ | Checkpoint.Sweep _ | Checkpoint.Pack _
  | Checkpoint.Anneal _ | Checkpoint.Race _ ->
      invalid_arg "Partition_evaluate: resume checkpoint is for a different \
                   solver"

let check_args ~table ~total_width ~max_tams =
  if total_width < 1 then
    invalid_arg "Partition_evaluate: total_width must be >= 1";
  if max_tams < 1 then invalid_arg "Partition_evaluate: max_tams must be >= 1";
  if Time_table.max_width table < total_width then
    invalid_arg "Partition_evaluate: time table narrower than total width"

exception Stopped of Outcome.t

let run_with (cfg : Run_config.t) ~table ~total_width =
  let effective_max =
    match cfg.Run_config.tams with
    | Some b -> b
    | None -> cfg.Run_config.max_tams
  in
  check_args ~table ~total_width ~max_tams:effective_max;
  let b_values =
    match cfg.Run_config.tams with
    | Some b ->
        if b > total_width then
          invalid_arg "Partition_evaluate: more TAMs than width";
        [ b ]
    | None ->
        Soctam_util.Intutil.range 1 (min cfg.Run_config.max_tams total_width)
  in
  let stats = cfg.Run_config.stats in
  let jobs = cfg.Run_config.jobs in
  let initial =
    match cfg.Run_config.initial_best with Some t -> t | None -> max_int
  in
  let cap =
    match cfg.Run_config.tau_import with Some b -> b | None -> max_int
  in
  let restored =
    Option.map (restore_pe ~cfg ~total_width ~b_values) cfg.Run_config.resume
  in
  (* Replay the interrupted run's solver-owned counters so the resumed
     collector converges to an uninterrupted run's totals. The racer
     disables this after the first resume: its collector already saw
     these counters live. *)
  (match cfg.Run_config.resume with
  | Some cp when Obs.enabled stats && cfg.Run_config.resume_replay ->
      List.iter
        (fun (name, n) -> if n > 0 then Obs.add stats ~n name)
        cp.Checkpoint.counters
  | Some _ | None -> ());
  let extras =
    let get name =
      match cfg.Run_config.resume with
      | None -> 0
      | Some cp -> (
          match List.assoc_opt name cp.Checkpoint.counters with
          | Some n -> n
          | None -> 0)
    in
    {
      x_tried = get "core_assign/assignments_tried";
      x_early = get "core_assign/early_terminations";
      x_levels = get "core_assign/levels_cut";
      x_publications = get "pool/tau_publications";
    }
  in
  let best =
    match restored with
    | Some { Checkpoint.pe_best = Some b; _ } ->
        {
          b_widths = b.Checkpoint.ba_widths;
          b_time = b.Checkpoint.ba_time;
          b_assignment = b.Checkpoint.ba_assignment;
        }
    | Some { Checkpoint.pe_best = None; _ } | None ->
        { b_widths = [||]; b_time = initial; b_assignment = [||] }
  in
  let tau =
    ref
      (match restored with
      | Some s -> s.Checkpoint.pe_tau
      | None -> initial)
  in
  let done_rev =
    ref
      (match restored with
      | Some s ->
          List.rev_map (eng_of_cursor ~total_width) s.Checkpoint.pe_done
      | None -> [])
  in
  (* The plan still to run: the restored cursor (mid-B) first, then the
     pending TAM counts; on a fresh run, every B with a fresh cursor. *)
  let todo =
    match restored with
    | None -> List.map (fresh_b ~total_width) b_values
    | Some s ->
        (match s.Checkpoint.pe_cursor with
        | Some c -> [ eng_of_cursor ~total_width c ]
        | None -> [])
        @ List.map (fresh_b ~total_width) s.Checkpoint.pe_pending
  in
  let deadline =
    Option.map
      (fun budget -> Soctam_util.Timer.now_s () +. budget)
      cfg.Run_config.time_budget
  in
  let counters_now ~cursor =
    let live = List.rev_append !done_rev (Option.to_list cursor) in
    let sum f = List.fold_left (fun acc g -> acc + f g) 0 live in
    List.filter
      (fun (_, n) -> n > 0)
      [
        ("partition/enumerated", sum (fun g -> g.g_enumerated));
        ("partition/evaluated", sum (fun g -> g.g_completed));
        ("partition/pruned", sum (fun g -> g.g_pruned));
        ("core_assign/assignments_tried", extras.x_tried);
        ("core_assign/early_terminations", extras.x_early);
        ("core_assign/levels_cut", extras.x_levels);
        ("pool/tau_publications", extras.x_publications);
      ]
  in
  let checkpoint_now ~cursor ~pending =
    {
      Checkpoint.soc = cfg.Run_config.soc_name;
      counters = counters_now ~cursor;
      state =
        Checkpoint.Partition_evaluate
          {
            Checkpoint.pe_total_width = total_width;
            pe_carry_tau = cfg.Run_config.carry_tau;
            pe_initial = cfg.Run_config.initial_best;
            pe_tau = !tau;
            pe_best =
              (if Array.length best.b_widths = 0 then None
               else
                 Some
                   {
                     Checkpoint.ba_widths = best.b_widths;
                     ba_time = best.b_time;
                     ba_assignment = best.b_assignment;
                   });
            pe_done = List.rev_map cursor_of_eng !done_rev;
            pe_cursor = Option.map cursor_of_eng cursor;
            pe_pending = List.map (fun g -> g.g_tams) pending;
          };
    }
  in
  let write_checkpoint cp =
    match cfg.Run_config.checkpoint_path with
    | None -> ()
    | Some path -> (
        match Checkpoint.save path cp with
        | Ok () -> ()
        | Error msg -> failwith ("checkpoint write failed: " ^ msg))
  in
  let slices_done = ref 0 in
  let boundary ~cursor ~pending =
    (match cfg.Run_config.slice_limit with
    | Some limit when !slices_done >= limit ->
        let cp = checkpoint_now ~cursor ~pending in
        write_checkpoint cp;
        raise (Stopped (Outcome.Budget_exhausted cp))
    | Some _ | None -> ());
    if cfg.Run_config.cancel () then begin
      let cp = checkpoint_now ~cursor ~pending in
      write_checkpoint cp;
      raise (Stopped (Outcome.Interrupted cp))
    end;
    (match deadline with
    | Some d when Soctam_util.Timer.now_s () > d ->
        let cp = checkpoint_now ~cursor ~pending in
        write_checkpoint cp;
        raise (Stopped (Outcome.Budget_exhausted cp))
    | Some _ | None -> ());
    write_checkpoint (checkpoint_now ~cursor ~pending)
  in
  let accumulate g (s : slice) hi =
    g.g_next <- hi;
    g.g_enumerated <- g.g_enumerated + s.sl_enumerated;
    g.g_completed <- g.g_completed + s.sl_completed;
    g.g_pruned <- g.g_pruned + s.sl_pruned;
    g.g_best_time <- merge_best_time g.g_best_time s.sl_best_time;
    extras.x_tried <- extras.x_tried + s.sl_tried;
    extras.x_early <- extras.x_early + s.sl_early;
    extras.x_levels <- extras.x_levels + s.sl_levels;
    extras.x_publications <- extras.x_publications + s.sl_publications
  in
  let outcome =
    (* One persistent team for the whole plan: domains are spawned here
       once and parked between slices, so per-slice scheduling is a
       condition-variable broadcast rather than a [Domain.spawn] — the
       dominant cost of the previous spawn-per-slice design. *)
    Pool.Team.with_team ~oversubscribe:cfg.Run_config.oversubscribe
      ~jobs:(max 1 jobs) (fun team ->
        try
          let rec over_plan = function
            | [] -> Outcome.Complete
            | g :: pending ->
                (* A fresh TAM count resets the bound when tau is not
                   carried; a restored mid-B cursor keeps the
                   checkpointed bound either way. *)
                if (not cfg.Run_config.carry_tau) && g.g_next = 0 then
                  tau := initial;
                let slice_len =
                  Run_config.slice_size cfg ~length:g.g_unique
                in
                while g.g_next < g.g_unique do
                  boundary ~cursor:(Some g) ~pending;
                  let lo = g.g_next in
                  let hi = min (lo + slice_len) g.g_unique in
                  let s =
                    evaluate_slice ~stats ~team ~cap ~table ~total_width
                      ~tams:g.g_tams ~tau ~lo ~hi best
                  in
                  accumulate g s hi;
                  incr slices_done
                done;
                done_rev := g :: !done_rev;
                over_plan pending
          in
          let outcome = over_plan todo in
          (* A finished run leaves no stale resume bait behind. *)
          (match cfg.Run_config.checkpoint_path with
          | Some path when Sys.file_exists path -> (
              try Sys.remove path with Sys_error _ -> ())
          | Some _ | None -> ());
          outcome
        with Stopped o -> o)
  in
  let per_b = List.rev_map b_stats_of_eng !done_rev |> Array.of_list in
  if Array.length best.b_widths = 0 then begin
    (* Nothing beat the seed: fall back to an even split over the first
       permitted TAM count (1 for P_NPAW, the fixed B for P_PAW). *)
    let parts =
      match b_values with [] -> 1 | b :: _ -> min b total_width
    in
    let base = total_width / parts and extra = total_width mod parts in
    let widths =
      Array.init parts (fun i -> if i < extra then base + 1 else base)
    in
    match Core_assign.run_table ~table ~widths () with
    | Core_assign.Assigned { assignment; time; _ } ->
        { widths; time; assignment; per_b; outcome }
    | Core_assign.Exceeded _ -> assert false
  end
  else
    {
      widths = best.b_widths;
      time = best.b_time;
      assignment = best.b_assignment;
      per_b;
      outcome;
    }

(* -- deprecated labelled-argument wrappers --------------------------------- *)

let config ?stats ?initial_best ?(carry_tau = true) ?(jobs = 1) () =
  let cfg = Run_config.default in
  let cfg = Run_config.with_jobs jobs cfg in
  let cfg = Run_config.with_carry_tau carry_tau cfg in
  let cfg =
    match stats with None -> cfg | Some s -> Run_config.with_stats s cfg
  in
  match initial_best with
  | None -> cfg
  | Some b -> Run_config.with_initial_best b cfg

let run ?stats ?initial_best ?carry_tau ?(jobs = 1) ~table ~total_width
    ~max_tams () =
  let cfg = config ?stats ?initial_best ?carry_tau ~jobs () in
  run_with
    (Run_config.with_max_tams max_tams cfg)
    ~table ~total_width

let run_fixed ?stats ?initial_best ?(jobs = 1) ~table ~total_width ~tams () =
  let cfg = config ?stats ?initial_best ~jobs () in
  run_with (Run_config.with_tams tams cfg) ~table ~total_width
