module Obs = Soctam_obs.Obs

type b_stats = {
  tams : int;
  unique_partitions : int;
  enumerated : int;
  completed : int;
  tau_terminated : int;
  best_time : int option;
}

let efficiency s =
  if s.unique_partitions = 0 then 0.
  else float_of_int s.completed /. float_of_int s.unique_partitions

type result = {
  widths : int array;
  time : int;
  assignment : int array;
  per_b : b_stats array;
}

type best = {
  mutable b_widths : int array;
  mutable b_time : int;
  mutable b_assignment : int array;
}

(* Flush one evaluation's local counters into the collector. Called at
   B / chunk granularity, so the per-partition hot loop stays free of
   collector traffic (see the [Obs] design notes). *)
let flush_counters stats ~enumerated ~pruned ~evaluated ~ca =
  if Obs.enabled stats then begin
    Obs.add stats ~n:enumerated "partition/enumerated";
    Obs.add stats ~n:pruned "partition/pruned";
    Obs.add stats ~n:evaluated "partition/evaluated";
    match ca with
    | None -> ()
    | Some (c : Core_assign.stats) ->
        Obs.add stats ~n:c.Core_assign.tried "core_assign/assignments_tried";
        Obs.add stats ~n:c.Core_assign.early_terminations
          "core_assign/early_terminations";
        Obs.add stats ~n:c.Core_assign.levels_cut "core_assign/levels_cut"
  end

let ca_stats stats = if Obs.enabled stats then Some (Core_assign.stats ()) else None

let evaluate_b ?(stats = Obs.null) ~table ~total_width ~tams ~tau best =
  let enumerated = ref 0 in
  let completed = ref 0 in
  let tau_terminated = ref 0 in
  let best_time_b = ref None in
  let ca = ca_stats stats in
  let publications = ref 0 in
  Obs.span stats "partition/evaluate_b" (fun () ->
      match
        Soctam_partition.Enumerate.Odometer.create ~total:total_width
          ~parts:tams
      with
      | None -> ()
      | Some odometer ->
          let continue = ref true in
          while !continue do
            let widths =
              Soctam_partition.Enumerate.Odometer.current odometer
            in
            incr enumerated;
            (match Core_assign.run_table ?stats:ca ~best:!tau ~table ~widths ()
             with
            | Core_assign.Exceeded _ -> incr tau_terminated
            | Core_assign.Assigned { assignment; time; _ } ->
                incr completed;
                if time < !tau then begin
                  tau := time;
                  incr publications;
                  Obs.event stats ~value:time "tau"
                end;
                (match !best_time_b with
                | Some t when t <= time -> ()
                | Some _ | None -> best_time_b := Some time);
                if time < best.b_time then begin
                  best.b_time <- time;
                  best.b_widths <- Array.copy widths;
                  best.b_assignment <- Array.copy assignment
                end);
            continue := Soctam_partition.Enumerate.Odometer.advance odometer
          done);
  flush_counters stats ~enumerated:!enumerated ~pruned:!tau_terminated
    ~evaluated:!completed ~ca;
  Obs.add stats ~n:!publications "pool/tau_publications";
  {
    tams;
    unique_partitions =
      Soctam_partition.Count.exact ~total:total_width ~parts:tams;
    enumerated = !enumerated;
    completed = !completed;
    tau_terminated = !tau_terminated;
    best_time = !best_time_b;
  }

(* -- parallel evaluation --------------------------------------------------- *)

(* The best candidate found inside one contiguous rank chunk. [c_rank] is
   the global lexicographic rank of [c_widths]: the reduction over chunks
   minimizes (time, rank), which reproduces the sequential "first strict
   improvement in enumeration order" winner no matter how chunk
   completions interleave. *)
type chunk_best = {
  mutable c_time : int;
  mutable c_rank : int;
  mutable c_widths : int array;
  mutable c_assignment : int array;
}

type chunk_result = {
  ch_enumerated : int;
  ch_completed : int;
  ch_tau_terminated : int;
  ch_best_time : int option;
  ch_best : chunk_best;
}

(* One domain's share of a TAM count: evaluate the partitions of global
   rank [lo .. hi-1]. The shared bound [tau] is read before every
   evaluation and improved after every completion, so pruning reflects
   the best result of every domain, not just this one. The early-exit
   threshold is [tau + 1], not [tau]: a partition that merely ties the
   bound must still complete, because the deterministic reduction needs
   its (time, rank) pair — the sequential path prunes ties, but there
   the tie's rank is already known to be larger than the incumbent's,
   which is exactly the information a racing domain lacks. *)
let evaluate_chunk ?(stats = Obs.null) ~table ~total_width ~tams ~tau ~lo ~hi
    () =
  let enumerated = ref 0 in
  let completed = ref 0 in
  let tau_terminated = ref 0 in
  let best_time_b = ref None in
  let ca = ca_stats stats in
  let cb =
    { c_time = max_int; c_rank = max_int; c_widths = [||]; c_assignment = [||] }
  in
  (match
     Soctam_partition.Enumerate.Odometer.create_at ~total:total_width
       ~parts:tams ~rank:lo
   with
  | None -> ()
  | Some odometer ->
      for rank = lo to hi - 1 do
        let widths = Soctam_partition.Enumerate.Odometer.current odometer in
        incr enumerated;
        let bound = Soctam_util.Pool.Shared_min.get tau in
        let threshold = if bound = max_int then max_int else bound + 1 in
        (match
           Core_assign.run_table ?stats:ca ~best:threshold ~table ~widths ()
         with
        | Core_assign.Exceeded _ -> incr tau_terminated
        | Core_assign.Assigned { assignment; time; _ } ->
            incr completed;
            (* The pre-read [bound] makes the improvement test racy, but
               a trace event is an observation, not a reduction input:
               at worst a tie between racing domains is reported as an
               improvement by both. *)
            if time < bound then Obs.event stats ~value:time "tau";
            Soctam_util.Pool.Shared_min.improve tau time;
            (match !best_time_b with
            | Some t when t <= time -> ()
            | Some _ | None -> best_time_b := Some time);
            (* Ranks increase within the chunk, so a strict comparison
               keeps the lowest-rank partition among equal times. *)
            if time < cb.c_time then begin
              cb.c_time <- time;
              cb.c_rank <- rank;
              cb.c_widths <- Array.copy widths;
              cb.c_assignment <- Array.copy assignment
            end);
        if rank < hi - 1 then
          ignore (Soctam_partition.Enumerate.Odometer.advance odometer)
      done);
  flush_counters stats ~enumerated:!enumerated ~pruned:!tau_terminated
    ~evaluated:!completed ~ca;
  {
    ch_enumerated = !enumerated;
    ch_completed = !completed;
    ch_tau_terminated = !tau_terminated;
    ch_best_time = !best_time_b;
    ch_best = cb;
  }

let evaluate_b_parallel ?(stats = Obs.null) ~jobs ~table ~total_width ~tams
    ~tau best =
  let unique =
    Soctam_partition.Count.exact ~total:total_width ~parts:tams
  in
  let publications_before = Soctam_util.Pool.Shared_min.publications tau in
  let chunks =
    Obs.span stats "partition/evaluate_b" (fun () ->
        Soctam_util.Pool.map_ranges ~stats ~jobs ~length:unique
          ~f:(fun ~lo ~hi ->
            evaluate_chunk ~stats ~table ~total_width ~tams ~tau ~lo ~hi ())
          ())
  in
  Obs.add stats
    ~n:(Soctam_util.Pool.Shared_min.publications tau - publications_before)
    "pool/tau_publications";
  (* Deterministic reduction: chunks arrive in rank order, so scanning
     left to right with strict comparisons yields the minimum
     (time, rank) candidate — byte-identical to the jobs = 1 winner. *)
  let winner =
    Array.fold_left
      (fun acc chunk ->
        let cb = chunk.ch_best in
        if Array.length cb.c_widths = 0 then acc
        else
          match acc with
          | Some best
            when best.c_time < cb.c_time
                 || (best.c_time = cb.c_time && best.c_rank < cb.c_rank) ->
              Some best
          | Some _ | None -> Some cb)
      None chunks
  in
  (match winner with
  | Some cb when cb.c_time < best.b_time ->
      best.b_time <- cb.c_time;
      best.b_widths <- cb.c_widths;
      best.b_assignment <- cb.c_assignment
  | Some _ | None -> ());
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 chunks in
  {
    tams;
    unique_partitions = unique;
    enumerated = sum (fun c -> c.ch_enumerated);
    completed = sum (fun c -> c.ch_completed);
    tau_terminated = sum (fun c -> c.ch_tau_terminated);
    best_time =
      Array.fold_left
        (fun acc c ->
          match (acc, c.ch_best_time) with
          | None, t | t, None -> t
          | Some a, Some b -> Some (min a b))
        None chunks;
  }

(* -- shared driver --------------------------------------------------------- *)

let check_args ~table ~total_width ~max_tams =
  if total_width < 1 then
    invalid_arg "Partition_evaluate: total_width must be >= 1";
  if max_tams < 1 then invalid_arg "Partition_evaluate: max_tams must be >= 1";
  if Time_table.max_width table < total_width then
    invalid_arg "Partition_evaluate: time table narrower than total width"

let run_general ?(stats = Obs.null) ?initial_best ~carry_tau ~jobs ~table
    ~total_width ~b_values () =
  let initial = match initial_best with Some t -> t | None -> max_int in
  let best = { b_widths = [||]; b_time = initial; b_assignment = [||] } in
  let per_b =
    if jobs <= 1 then begin
      let tau = ref initial in
      List.map
        (fun tams ->
          if not carry_tau then tau := initial;
          evaluate_b ~stats ~table ~total_width ~tams ~tau best)
        b_values
    end
    else begin
      (* One shared bound per tau scope: for the carried variant it lives
         across TAM counts (the strongest pruning); for the per-B reset
         variant each TAM count starts from [initial] again. The B loop
         itself stays sequential — parallelism is inside each TAM
         count's partition range, where the fan-out lives. *)
      let carried = Soctam_util.Pool.Shared_min.create initial in
      List.map
        (fun tams ->
          let tau =
            if carry_tau then carried
            else Soctam_util.Pool.Shared_min.create initial
          in
          evaluate_b_parallel ~stats ~jobs ~table ~total_width ~tams ~tau best)
        b_values
    end
  in
  if Array.length best.b_widths = 0 then begin
    (* Nothing beat the seed: fall back to an even split over the first
       permitted TAM count (1 for P_NPAW, the fixed B for P_PAW). *)
    let parts =
      match b_values with [] -> 1 | b :: _ -> min b total_width
    in
    let base = total_width / parts and extra = total_width mod parts in
    let widths =
      Array.init parts (fun i -> if i < extra then base + 1 else base)
    in
    match Core_assign.run_table ~table ~widths () with
    | Core_assign.Assigned { assignment; time; _ } ->
        { widths; time; assignment; per_b = Array.of_list per_b }
    | Core_assign.Exceeded _ -> assert false
  end
  else
    {
      widths = best.b_widths;
      time = best.b_time;
      assignment = best.b_assignment;
      per_b = Array.of_list per_b;
    }

let run ?stats ?initial_best ?(carry_tau = true) ?(jobs = 1) ~table
    ~total_width ~max_tams () =
  check_args ~table ~total_width ~max_tams;
  let b_values = Soctam_util.Intutil.range 1 (min max_tams total_width) in
  run_general ?stats ?initial_best ~carry_tau ~jobs ~table ~total_width
    ~b_values ()

let run_fixed ?stats ?initial_best ?(jobs = 1) ~table ~total_width ~tams () =
  check_args ~table ~total_width ~max_tams:tams;
  if tams > total_width then
    invalid_arg "Partition_evaluate.run_fixed: more TAMs than width";
  run_general ?stats ?initial_best ~carry_tau:true ~jobs ~table ~total_width
    ~b_values:[ tams ] ()
