(** The exhaustive baseline of [Iyengar et al., JETTA 2002] ([8]): solve
    P_PAW by running an {e exact} P_AW optimization for every unique
    partition of the TAM width.

    This is the method the paper improves on. It produces optimal times
    (when it finishes) but its CPU time grows with the number of
    partitions times the cost of an exact solve, which is why the paper's
    authors could not run it beyond three TAMs on industrial SOCs. Both a
    per-partition node budget and a global wall-clock budget let it
    degrade to "best found so far", mirroring the paper's "did not
    complete even after two days" entries — and since those truncated
    runs are the expensive ones, {!run_with} can checkpoint them and
    resume later (the partition sequence is walked in slices, exactly as
    in {!Partition_evaluate}). *)

type solver = Bb | Milp
(** Exact method used on every partition: the dedicated branch & bound
    ({!Soctam_ilp.Exact.solve_bb}, the default and the scalable one) or
    the paper's §3.2 ILP model ({!Soctam_ilp.Exact.solve_milp}) for
    cross-checking. Checkpoints record the method; resuming under the
    other one is rejected. *)

type result = {
  widths : int array;
  time : int;
  assignment : int array;
  partitions_total : int;  (** unique partitions of the instance *)
  partitions_solved : int;  (** partitions solved to proven optimality *)
  nodes : int;  (** total branch & bound nodes *)
  outcome : Outcome.t;
      (** [Complete] iff every partition was solved to proven optimality
          within the budgets; otherwise the result is a best-effort
          incumbent and the carried checkpoint resumes the search *)
}

val run_with :
  ?solver:solver ->
  Run_config.t ->
  table:Time_table.t ->
  total_width:int ->
  tams:int ->
  result
(** [run_with cfg ~table ~total_width ~tams] enumerates every partition
    of [total_width] into [tams] parts and solves each exactly with
    [?solver] (default {!Bb}) under [cfg.node_limit] nodes per
    partition.

    [cfg.tau_import] warm-starts every B&B solve with the imported
    bound and excludes candidates that cannot strictly beat it; when
    nothing can, the result carries the imported time with {e empty}
    [widths]/[assignment] arrays — a completed run in that state proves
    no architecture of this instance beats the import. Only the racing
    portfolio sets this field. [cfg.slice_limit] stops the run
    (resumably, [Outcome.Budget_exhausted]) after that many slices.

    Policy read from [cfg]: [jobs] splits each slice into contiguous
    rank chunks solved on that many domains; without a budget the result
    is identical for every job count (the winner is the minimum by
    (time, rank)). [time_budget] is in elapsed seconds on the monotonic
    clock; each worker always solves the first partition of its chunk
    before consulting the deadline, so even a zero budget returns a
    well-formed truncated incumbent with [Outcome.Budget_exhausted] (a
    per-partition node-budget stop ends the run the same way). [cancel]
    is polled at slice boundaries and ends the run with
    [Outcome.Interrupted]. Checkpoints go to [checkpoint_path] at every
    boundary (removed again on completion); a budget stop {e inside} a
    slice rewinds the resume token to the slice start, because which
    partitions beat the deadline is timing-dependent — the resumed run
    re-solves that slice and its counter totals match an uninterrupted
    run's. [resume] continues a checkpointed run; the checkpoint must
    match this instance and SOC name. [stats] records
    [exhaustive/partitions_total], [exhaustive/partitions_solved] and
    [exhaustive/nodes] counters, [exhaustive/solve] spans and pool
    utilization; on resume the checkpointed counters are replayed first.

    @raise Invalid_argument when [total_width < tams] or a resume
    checkpoint does not match this run.
    @raise Failure when a checkpoint write to [checkpoint_path] fails. *)

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?node_limit_per_partition:int ->
  ?time_budget:float ->
  ?jobs:int ->
  table:Time_table.t ->
  total_width:int ->
  tams:int ->
  unit ->
  result
[@@alert deprecated "Use Exhaustive.run_with with a Run_config.t instead."]
(** [run ~table ~total_width ~tams ()] is {!run_with} with the labelled
    arguments folded into a {!Run_config.t}
    ([node_limit_per_partition] defaults to 2_000_000). *)
