(** The exhaustive baseline of [Iyengar et al., JETTA 2002] ([8]): solve
    P_PAW by running an {e exact} P_AW optimization for every unique
    partition of the TAM width.

    This is the method the paper improves on. It produces optimal times
    (when it finishes) but its CPU time grows with the number of
    partitions times the cost of an exact solve, which is why the paper's
    authors could not run it beyond three TAMs on industrial SOCs. Both a
    per-partition node budget and a global wall-clock budget let it
    degrade to "best found so far", mirroring the paper's "did not
    complete even after two days" entries. *)

type result = {
  widths : int array;
  time : int;
  assignment : int array;
  partitions_total : int;  (** unique partitions of the instance *)
  partitions_solved : int;  (** partitions solved to proven optimality *)
  complete : bool;
      (** every partition solved optimally within the budgets; when
          [false] the result is a best-effort incumbent *)
  nodes : int;  (** total branch & bound nodes *)
}

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?node_limit_per_partition:int ->
  ?time_budget:float ->
  ?jobs:int ->
  table:Time_table.t ->
  total_width:int ->
  tams:int ->
  unit ->
  result
(** [run ~table ~total_width ~tams ()] enumerates every partition of
    [total_width] into [tams] parts and solves each exactly with
    {!Soctam_ilp.Exact.solve_bb}. [time_budget] is in elapsed seconds
    measured on the monotonic clock (default: unlimited), so wall-clock
    adjustments cannot distort it; each worker always solves the first
    partition of its chunk before consulting the deadline, so even a
    zero budget returns a well-formed truncated incumbent.
    [node_limit_per_partition] defaults to 2_000_000.

    [jobs] (default 1) splits the partition sequence into contiguous
    rank chunks solved on that many domains. Without a [time_budget]
    the result is identical for every [jobs] value (the winner is the
    minimum by (time, rank)); under a budget the set of partitions that
    fit before the deadline is inherently timing-dependent, exactly as
    it already was sequentially.

    [stats] (default disabled) records [exhaustive/partitions_total],
    [exhaustive/partitions_solved] and [exhaustive/nodes] counters, an
    [exhaustive/solve] span and pool utilization. Counters are exact and
    reproducible whenever the run is (i.e. no [time_budget] or
    [jobs = 1] with a generous budget). *)
