(** The paper's end-to-end wrapper/TAM co-optimization methodology:

    + build the per-core time table (wrapper designs, P_W);
    + run {!Partition_evaluate} to pick the TAM count and width partition
      (P_PAW / P_NPAW, heuristic);
    + run one exact P_AW optimization on the winning partition (the
      paper's "final optimization step", §3.2).

    The result is a near-optimal test access architecture obtained in a
    small fraction of the exhaustive method's CPU time. *)

type t = {
  architecture : Soctam_tam.Architecture.t;  (** final architecture *)
  heuristic_time : int;  (** SOC time before the final exact step *)
  final_time : int;  (** SOC time after it (= [architecture.time]) *)
  final_proven_optimal : bool;
      (** the exact step finished within its node budget, so [final_time]
          is optimal for the chosen partition *)
  partition_stats : Partition_evaluate.b_stats array;
  exact_nodes : int;  (** nodes used by the final exact step *)
}

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?max_tams:int ->
  ?node_limit:int ->
  ?jobs:int ->
  ?table:Time_table.t ->
  Soctam_model.Soc.t ->
  total_width:int ->
  t
(** [run soc ~total_width] solves P_NPAW with [max_tams] (default 10,
    the paper's practical ceiling). [table] may be supplied to reuse a
    previously built time table; it must cover [total_width].
    [node_limit] bounds the final exact step (default 2_000_000).
    [jobs] (default 1) parallelizes the partition-evaluation stage over
    that many domains; the resulting architecture is identical for every
    [jobs] value (see {!Partition_evaluate.run}).

    [stats] (default disabled) threads an observability collector through
    the whole pipeline: {!Time_table.build} when the table is not
    supplied, the full {!Partition_evaluate} counter set under a
    [co_optimize/partition_evaluate] span, and the final exact step as a
    [co_optimize/exact_step] span plus a [co_optimize/exact_nodes]
    counter. *)

val run_fixed_tams :
  ?stats:Soctam_obs.Obs.t ->
  ?node_limit:int ->
  ?jobs:int ->
  ?table:Time_table.t ->
  Soctam_model.Soc.t ->
  total_width:int ->
  tams:int ->
  t
(** P_PAW variant: the TAM count is fixed. [stats] as in {!run}. *)
