(** The paper's end-to-end wrapper/TAM co-optimization methodology:

    + build the per-core time table (wrapper designs, P_W);
    + run {!Partition_evaluate} to pick the TAM count and width partition
      (P_PAW / P_NPAW, heuristic);
    + run one exact P_AW optimization on the winning partition (the
      paper's "final optimization step", §3.2).

    The result is a near-optimal test access architecture obtained in a
    small fraction of the exhaustive method's CPU time. *)

type t = {
  architecture : Soctam_tam.Architecture.t;  (** final architecture *)
  heuristic_time : int;  (** SOC time before the final exact step *)
  final_time : int;  (** SOC time after it (= [architecture.time]) *)
  final_proven_optimal : bool;
      (** the exact step finished within its node budget, so [final_time]
          is optimal for the chosen partition *)
  partition_stats : Partition_evaluate.b_stats array;
  exact_nodes : int;  (** nodes used by the final exact step *)
  outcome : Outcome.t;
      (** how the partition search ended; a truncated search still
          yields a usable (exactly polished) architecture, and the
          carried checkpoint resumes the search stage *)
}

val finish :
  ?stats:Soctam_obs.Obs.t ->
  table:Time_table.t ->
  node_limit:int ->
  Partition_evaluate.result ->
  t
(** The final exact step alone: polish a partition search's incumbent
    with one warm-started B&B on its chosen partition. Exposed so the
    engine adapters ({!Engine.pe}, the racer's winner polish) can run
    the paper's pipeline without re-deriving the time table. *)

val run_with : Run_config.t -> Soctam_model.Soc.t -> total_width:int -> t
(** [run_with cfg soc ~total_width] runs the whole pipeline under one
    configuration: P_NPAW up to [cfg.max_tams], or P_PAW when
    [cfg.tams] is set. [cfg.table] is reused when present (it must
    cover [total_width]); otherwise the table is built here.
    [cfg.node_limit] bounds the final exact step. Budgets,
    checkpointing, resume and cancellation apply to the partition
    search stage exactly as in {!Partition_evaluate.run_with}; the
    final exact step always runs on the search's incumbent, so a
    truncated run still returns a well-formed architecture.

    @raise Invalid_argument when the supplied table is narrower than
    [total_width], or for the {!Partition_evaluate.run_with} cases. *)

(** {1 Deprecated labelled-argument entry points}

    Thin wrappers over {!run_with}; behavior unchanged. *)

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?max_tams:int ->
  ?node_limit:int ->
  ?jobs:int ->
  ?table:Time_table.t ->
  Soctam_model.Soc.t ->
  total_width:int ->
  t
[@@alert deprecated "Use Co_optimize.run_with with a Run_config.t instead."]
(** [run soc ~total_width] solves P_NPAW with [max_tams] (default 10,
    the paper's practical ceiling); [node_limit] defaults to 2_000_000.
    The resulting architecture is identical for every [jobs] value. *)

val run_fixed_tams :
  ?stats:Soctam_obs.Obs.t ->
  ?node_limit:int ->
  ?jobs:int ->
  ?table:Time_table.t ->
  Soctam_model.Soc.t ->
  total_width:int ->
  tams:int ->
  t
[@@alert
  deprecated
    "Use Co_optimize.run_with with Run_config.with_tams instead."]
(** P_PAW variant: the TAM count is fixed. *)
