(** How an optimization run ended.

    Before this type, every solver signaled truncation through its own
    sentinel ([Exhaustive.complete = false], deadline-shaped counter
    gaps in [Partition_evaluate]) and callers had to know which field
    meant what. An {!t} makes the three endings one closed type, and the
    resumable endings carry the {!Checkpoint.t} that continues the run. *)

type t =
  | Complete  (** the whole search space was explored under the budgets *)
  | Budget_exhausted of Checkpoint.t
      (** a time, node or other budget stopped the run; the result is a
          best-effort incumbent and the checkpoint resumes the search *)
  | Interrupted of Checkpoint.t
      (** cooperative cancellation (SIGINT via [Soctam_util.Cancel])
          stopped the run at a checkpoint boundary *)

val is_complete : t -> bool

val resume_token : t -> Checkpoint.t option
(** The carried checkpoint, when there is one. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
