(** First-class solver engines.

    The repo grew five independent solvers for the same wrapper/TAM
    co-optimization problem — the paper's heuristic pipeline
    ({!Partition_evaluate} + exact finish), the exhaustive baseline,
    the ILP cross-check, the rectangle packer and the simulated
    annealer — each with its own [run_with] entry point and ad-hoc CLI
    plumbing. An {!S} packages one solver behind a uniform surface:
    a registry name, a {!caps} record the callers use to validate
    flag/engine combinations, a slice-aware [run] on the shared
    {!Run_config.t} policy, the {!Checkpoint.state} variant it resumes
    from, and a {!cert} spec naming the [lib/check] certificates that
    apply to its reports. The racing portfolio ([Soctam_race.Race]) and
    the CLI subcommands both drive engines only through this interface.

    The adapters for the solvers living in [lib/core] are defined here
    ({!pe}, {!exhaustive}, {!ilp}); [lib/pack] and [lib/anneal] export
    theirs from their own libraries, and [Soctam_race.Registry] collects
    all five. *)

type instance = {
  table : Time_table.t;
  total_width : int;
}
(** What an engine optimizes over: the per-core time table and the
    total TAM width. Everything else — TAM-count plan, budgets, slices,
    resume tokens, imported bounds — travels in the {!Run_config.t}. *)

type caps = {
  parallel : bool;
      (** honors [Run_config.jobs]; the racer downgrades sequential
          engines to [jobs = 1] instead of erroring *)
  imports_tau : bool;  (** honors [Run_config.tau_import] *)
  needs_fixed_tams : bool;
      (** requires [Run_config.tams] (P_PAW only — the exhaustive and
          ILP baselines enumerate one TAM count) *)
  free_tams_only : bool;
      (** rejects [Run_config.tams] (the annealer walks TAM counts
          freely and cannot hold one fixed) *)
  proves : bool;
      (** an [Outcome.Complete] run proves its reported time optimal
          for the instance (under the engine's fixed TAM count, if
          any); the racer terminates the portfolio on such a proof *)
}

type report = {
  r_widths : int array;
      (** chosen partition; empty when the engine ran entirely under an
          imported bound and nothing beat it (see
          {!Exhaustive.run_with}) *)
  r_time : int;
  r_assignment : int array;
  r_outcome : Outcome.t;
  r_notes : string list;  (** human-readable one-liners for the CLI *)
}

type cert = {
  cert_exact : bool;
      (** the architecture certificate may re-derive the exact optimum
          of the chosen partition ([Certify.architecture
          ~check_exact:true]) at reasonable cost *)
  cert_packing : bool;
      (** the engine's schedule admits the rectangle-packing
          certificate ([Certify.packing]) *)
}

module type S = sig
  val name : string
  (** Registry name ([pe], [pack], [anneal], ...). *)

  val caps : caps
  val cert : cert

  val owns_token : Checkpoint.state -> bool
  (** Does this checkpoint state belong to this engine? The racer
      validates every embedded slot token against its engine before
      resuming. *)

  val run : Run_config.t -> instance -> report
  (** One (possibly sliced) run under the shared policy: respects
      [jobs], [stats], [tams]/[max_tams], [initial_best], budgets,
      [slice_limit], [tau_import], [resume]/[resume_replay] and
      [cancel] exactly as the underlying [run_with] documents them.
      Reports are byte-identical at every job count. *)
end

type t = (module S)

val name : t -> string
val caps : t -> caps
val cert : t -> cert
val owns_token : t -> Checkpoint.state -> bool
val run : t -> Run_config.t -> instance -> report

(** {1 Adapters for the solvers in this library} *)

val pe : t
(** The paper's pipeline: {!Partition_evaluate} over the configured
    TAM-count plan, plus the final exact step ({!Co_optimize.finish})
    when — and only when — the search ran to [Outcome.Complete]; a
    truncated slice reports the raw heuristic incumbent, so a racing
    slice never pays a B&B polish it may immediately discard. *)

val exhaustive : t
(** The exhaustive baseline (fixed TAM count, B&B per partition).
    Complete ⇒ proven optimal for that TAM count. *)

val ilp : t
(** The exhaustive machinery with the paper's §3.2 ILP model per
    partition ({!Exhaustive.Milp}) — the cross-checking engine. *)
