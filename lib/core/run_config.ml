type t = {
  jobs : int;
  oversubscribe : bool;
  stats : Soctam_obs.Obs.t;
  soc_name : string option;
  table : Time_table.t option;
  node_limit : int;
  max_tams : int;
  tams : int option;
  initial_best : int option;
  carry_tau : bool;
  time_budget : float option;
  checkpoint_path : string option;
  checkpoint_every : int;
  resume : Checkpoint.t option;
  resume_replay : bool;
  cancel : unit -> bool;
  slice_limit : int option;
  tau_import : int option;
}

let never_cancelled () = false

let default =
  {
    jobs = 1;
    oversubscribe = false;
    stats = Soctam_obs.Obs.null;
    soc_name = None;
    table = None;
    node_limit = 2_000_000;
    max_tams = 10;
    tams = None;
    initial_best = None;
    carry_tau = true;
    time_budget = None;
    checkpoint_path = None;
    checkpoint_every = 50_000;
    resume = None;
    resume_replay = true;
    cancel = never_cancelled;
    slice_limit = None;
    tau_import = None;
  }

let with_jobs jobs t =
  if jobs < 1 then invalid_arg "Run_config.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_oversubscribe oversubscribe t = { t with oversubscribe }
let with_stats stats t = { t with stats }
let with_soc_name name t = { t with soc_name = Some name }
let with_table table t = { t with table = Some table }
let without_table t = { t with table = None }

let with_node_limit node_limit t =
  if node_limit < 1 then
    invalid_arg "Run_config.with_node_limit: node_limit must be >= 1";
  { t with node_limit }

let with_max_tams max_tams t =
  if max_tams < 1 then
    invalid_arg "Run_config.with_max_tams: max_tams must be >= 1";
  { t with max_tams }

let with_tams tams t =
  if tams < 1 then invalid_arg "Run_config.with_tams: tams must be >= 1";
  { t with tams = Some tams }

let with_any_tams t = { t with tams = None }
let with_initial_best best t = { t with initial_best = Some best }
let with_carry_tau carry_tau t = { t with carry_tau }

let with_time_budget budget t =
  if budget < 0. then
    invalid_arg "Run_config.with_time_budget: budget must be >= 0";
  { t with time_budget = Some budget }

let with_checkpoint path t = { t with checkpoint_path = Some path }

let with_checkpoint_every every t =
  if every < 1 then
    invalid_arg "Run_config.with_checkpoint_every: interval must be >= 1";
  { t with checkpoint_every = every }

let with_resume resume t = { t with resume = Some resume }
let with_resume_replay resume_replay t = { t with resume_replay }
let with_cancel cancel t = { t with cancel }

let with_slice_limit limit t =
  if limit < 1 then
    invalid_arg "Run_config.with_slice_limit: limit must be >= 1";
  { t with slice_limit = Some limit }

let without_slice_limit t = { t with slice_limit = None }

let with_tau_import bound t =
  if bound < 1 then
    invalid_arg "Run_config.with_tau_import: bound must be >= 1";
  { t with tau_import = Some bound }

let checkpointing t =
  t.checkpoint_path <> None || t.resume <> None || t.time_budget <> None
  || t.slice_limit <> None

(* Slice size of the checkpoint engines: [checkpoint_every] ranks when
   the run can stop early (so boundaries exist to stop at), otherwise
   the whole range in one slice — the non-checkpointed fast path is the
   checkpointed path with a single boundary, not separate code. *)
let slice_size t ~length =
  if length < 1 then 1
  else if checkpointing t then min t.checkpoint_every length
  else length
