(** TAM width design-space exploration: run the co-optimization pipeline
    across a sweep of total widths and report, for each, the architecture,
    the lower-bound gap and whether the SOC has saturated (more wires
    cannot help). Answers the designer's question behind the paper's
    W = 16..64 sweeps: how many test pins does this SOC actually need? *)

type point = {
  width : int;  (** total TAM width *)
  tams : int;  (** TAM count of the best architecture found *)
  widths : int array;  (** its partition *)
  time : int;  (** its SOC testing time *)
  lower_bound : int;  (** {!Bounds.t.combined} at this width *)
  gap_pct : float;  (** optimality gap certificate *)
  saturated : bool;  (** time equals the bottleneck bound *)
}

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?max_tams:int ->
  ?node_limit:int ->
  ?jobs:int ->
  Soctam_model.Soc.t ->
  widths:int list ->
  point list
(** One pipeline run per width, in the given order. The time table is
    built once at the largest width and shared. [jobs] (default 1)
    parallelizes each width's partition evaluation over that many
    domains; the reported points are identical for every [jobs] value.
    [stats] (default disabled) threads the observability collector
    through every {!Co_optimize.run}, adding one [sweep/width<W>] span
    per point on top of the pipeline's own counters and spans.
    @raise Invalid_argument on an empty or non-positive width list. *)

val knee : ?tolerance_pct:float -> point list -> point option
(** The narrowest width whose time is within [tolerance_pct] (default 5%)
    of the best time in the sweep — the economic choice of pin budget.
    [None] on an empty list. *)

val pp : Format.formatter -> point list -> unit
(** Aligned textual rendering of a sweep. *)
