(** TAM width design-space exploration: run the co-optimization pipeline
    across a sweep of total widths and report, for each, the architecture,
    the lower-bound gap and whether the SOC has saturated (more wires
    cannot help). Answers the designer's question behind the paper's
    W = 16..64 sweeps: how many test pins does this SOC actually need? *)

type point = {
  width : int;  (** total TAM width *)
  tams : int;  (** TAM count of the best architecture found *)
  widths : int array;  (** its partition *)
  time : int;  (** its SOC testing time *)
  lower_bound : int;  (** {!Bounds.t.combined} at this width *)
  gap_pct : float;  (** optimality gap certificate *)
  saturated : bool;  (** time equals the bottleneck bound *)
}

type result = {
  points : point list;  (** one per completed width, in sweep order *)
  outcome : Outcome.t;
      (** [Complete] when every width ran; a truncated sweep's
          checkpoint resumes at the first width not completed —
          mid-search when the truncation left that width's own token
          embedded ({!Checkpoint.sweep_state.sw_inner}) *)
}

val run_with : Run_config.t -> Soctam_model.Soc.t -> widths:int list -> result
(** [run_with cfg soc ~widths] runs one pipeline per width, in the given
    order, each under [cfg] (see {!Co_optimize.run_with}). The time
    table is [cfg.table] when present (it must cover the widest point),
    else built once at the largest width and shared.

    The sweep is the checkpointed unit: the per-width runs never write
    checkpoints of their own, and a budget expiry or cancellation
    {e inside} a width embeds that width's resume token (partial
    incumbent, cursor and counters) in the sweep checkpoint, so a
    resume continues the width mid-search instead of re-running it
    whole. [cfg.time_budget] spans the whole sweep — each width's
    search receives the remaining budget. A sweep checkpoint carries no
    counters of its own; the interrupted width's partial counters
    travel inside its embedded token.

    @raise Invalid_argument on an empty or non-positive width list, a
    too-narrow supplied table, or a resume checkpoint that does not
    match this sweep's [max_tams], width list or SOC name.
    @raise Failure when a checkpoint write fails. *)

val run :
  ?stats:Soctam_obs.Obs.t ->
  ?max_tams:int ->
  ?node_limit:int ->
  ?jobs:int ->
  Soctam_model.Soc.t ->
  widths:int list ->
  point list
[@@alert deprecated "Use Sweep.run_with with a Run_config.t instead."]
(** [run soc ~widths] is {!run_with} with the labelled arguments folded
    into a {!Run_config.t}, returning just the points. *)

val knee : ?tolerance_pct:float -> point list -> point option
(** The narrowest width whose time is within [tolerance_pct] (default 5%)
    of the best time in the sweep — the economic choice of pin budget.
    [None] on an empty list. *)

val pp : Format.formatter -> point list -> unit
(** Aligned textual rendering of a sweep. *)
