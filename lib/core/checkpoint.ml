module Json = Soctam_util.Json

let version = 1

type b_cursor = {
  bc_tams : int;
  bc_next_rank : int;
  bc_enumerated : int;
  bc_completed : int;
  bc_pruned : int;
  bc_best_time : int option;
}

type best_arch = {
  ba_widths : int array;
  ba_time : int;
  ba_assignment : int array;
}

type pe_state = {
  pe_total_width : int;
  pe_carry_tau : bool;
  pe_initial : int option;
  pe_tau : int;
  pe_best : best_arch option;
  pe_done : b_cursor list;
  pe_cursor : b_cursor option;
  pe_pending : int list;
}

type ex_best = {
  eb_time : int;
  eb_rank : int;
  eb_widths : int array;
  eb_assignment : int array;
}

type ex_state = {
  ex_total_width : int;
  ex_tams : int;
  ex_method : string;
  ex_next_rank : int;
  ex_best : ex_best option;
  ex_solved : int;
  ex_nodes : int;
}

type sweep_point = {
  sp_width : int;
  sp_tams : int;
  sp_widths : int array;
  sp_time : int;
  sp_lower_bound : int;
  sp_gap_pct : float;
  sp_saturated : bool;
}

type pack_state = {
  pk_total_width : int;
  pk_tams : int option;
  pk_max_tams : int;
  pk_initial : int option;
  pk_tau : int;
  pk_best : best_arch option;
  pk_next_rank : int;
  pk_ranks : int;
  pk_packings : int;
  pk_candidates : int;
  pk_completed : int;
  pk_pruned : int;
  pk_best_makespan : int option;
}

type an_state = {
  an_total_width : int;
  an_max_tams : int;
  an_iterations : int;
  an_next_iteration : int;
  an_seed : int64;
  an_rng : int64;
  an_temperature : float;
  an_initial_temperature : float;
  an_cooling : float;
  an_tams : int;
  an_widths : int array;
  an_assignment : int array;
  an_best : best_arch option;
  an_accepted : int;
  an_proposed : int;
}

type state =
  | Partition_evaluate of pe_state
  | Exhaustive of ex_state
  | Sweep of sweep_state
  | Pack of pack_state
  | Anneal of an_state
  | Race of race_state

and race_slot = {
  rs_engine : string;
  rs_done : bool;
  rs_proved : bool;
  rs_improvements : int;
  rs_slices : int;
  rs_token : t option;
}

and race_state = {
  ra_total_width : int;
  ra_tams : int option;
  ra_max_tams : int;
  ra_initial : int option;
  ra_tau : int;
  ra_best : best_arch option;
  ra_winner : string option;
  ra_rounds : int;
  ra_slices : int;
  ra_imports : int;
  ra_exports : int;
  ra_slots : race_slot list;
}

and sweep_state = {
  sw_max_tams : int;
  sw_points : sweep_point list;
  sw_pending : int list;
  sw_inner : t option;
}

and t = { soc : string option; counters : (string * int) list; state : state }

(* -- rendering ------------------------------------------------------------- *)

let json_int_array a = Json.List (Array.to_list a |> List.map (fun i -> Json.Int i))
let json_int_opt = function None -> Json.Null | Some i -> Json.Int i

let json_b_cursor c =
  Json.Obj
    [
      ("tams", Json.Int c.bc_tams);
      ("next_rank", Json.Int c.bc_next_rank);
      ("enumerated", Json.Int c.bc_enumerated);
      ("completed", Json.Int c.bc_completed);
      ("pruned", Json.Int c.bc_pruned);
      ("best_time", json_int_opt c.bc_best_time);
    ]

(* Int64 words (the rng state) and floats (the annealing temperature
   schedule) are rendered as 16-digit hex of their raw bits: decimal
   float printing is lossy, and a resumed annealer must continue the
   exact trajectory of the interrupted one. *)
let json_hex64 v = Json.String (Printf.sprintf "%016Lx" v)
let json_float_bits f = json_hex64 (Int64.bits_of_float f)

let json_best_arch = function
  | None -> Json.Null
  | Some b ->
      Json.Obj
        [
          ("widths", json_int_array b.ba_widths);
          ("time", Json.Int b.ba_time);
          ("assignment", json_int_array b.ba_assignment);
        ]

(* FNV-1a 64-bit over the canonical rendering of the body: cheap, stable
   across runs, and plenty to catch the failure modes a checkpoint file
   actually meets (truncation, partial writes, hand edits). This is an
   integrity check, not an authentication scheme. *)
let checksum_of s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let rec json_state = function
  | Partition_evaluate s ->
      ( "partition_evaluate",
        Json.Obj
          [
            ("total_width", Json.Int s.pe_total_width);
            ("carry_tau", Json.Bool s.pe_carry_tau);
            ("initial", json_int_opt s.pe_initial);
            ("tau", Json.Int s.pe_tau);
            ("best", json_best_arch s.pe_best);
            ("done", Json.List (List.map json_b_cursor s.pe_done));
            ( "cursor",
              match s.pe_cursor with
              | None -> Json.Null
              | Some c -> json_b_cursor c );
            ("pending", Json.List (List.map (fun b -> Json.Int b) s.pe_pending));
          ] )
  | Exhaustive s ->
      ( "exhaustive",
        Json.Obj
          [
            ("total_width", Json.Int s.ex_total_width);
            ("tams", Json.Int s.ex_tams);
            ("method", Json.String s.ex_method);
            ("next_rank", Json.Int s.ex_next_rank);
            ( "best",
              match s.ex_best with
              | None -> Json.Null
              | Some b ->
                  Json.Obj
                    [
                      ("time", Json.Int b.eb_time);
                      ("rank", Json.Int b.eb_rank);
                      ("widths", json_int_array b.eb_widths);
                      ("assignment", json_int_array b.eb_assignment);
                    ] );
            ("solved", Json.Int s.ex_solved);
            ("nodes", Json.Int s.ex_nodes);
          ] )
  | Sweep s ->
      ( "sweep",
        Json.Obj
          [
            ("max_tams", Json.Int s.sw_max_tams);
            ( "points",
              Json.List
                (List.map
                   (fun p ->
                     Json.Obj
                       [
                         ("width", Json.Int p.sp_width);
                         ("tams", Json.Int p.sp_tams);
                         ("widths", json_int_array p.sp_widths);
                         ("time", Json.Int p.sp_time);
                         ("lower_bound", Json.Int p.sp_lower_bound);
                         ("gap_pct", Json.Float p.sp_gap_pct);
                         ("saturated", Json.Bool p.sp_saturated);
                       ])
                   s.sw_points) );
            ("pending", Json.List (List.map (fun w -> Json.Int w) s.sw_pending));
            (* The interrupted width's own resume token, embedded as a
               complete document (like race slot tokens) so the sweep
               can hand it back to the per-width solver on resume. *)
            ( "inner",
              match s.sw_inner with None -> Json.Null | Some tok -> to_json tok
            );
          ] )
  | Pack s ->
      ( "pack",
        Json.Obj
          [
            ("total_width", Json.Int s.pk_total_width);
            ("tams", json_int_opt s.pk_tams);
            ("max_tams", Json.Int s.pk_max_tams);
            ("initial", json_int_opt s.pk_initial);
            ("tau", Json.Int s.pk_tau);
            ("best", json_best_arch s.pk_best);
            ("next_rank", Json.Int s.pk_next_rank);
            ("ranks", Json.Int s.pk_ranks);
            ("packings", Json.Int s.pk_packings);
            ("candidates", Json.Int s.pk_candidates);
            ("completed", Json.Int s.pk_completed);
            ("pruned", Json.Int s.pk_pruned);
            ("best_makespan", json_int_opt s.pk_best_makespan);
          ] )
  | Anneal s ->
      ( "anneal",
        Json.Obj
          [
            ("total_width", Json.Int s.an_total_width);
            ("max_tams", Json.Int s.an_max_tams);
            ("iterations", Json.Int s.an_iterations);
            ("next_iteration", Json.Int s.an_next_iteration);
            ("seed", json_hex64 s.an_seed);
            ("rng", json_hex64 s.an_rng);
            ("temperature", json_float_bits s.an_temperature);
            ("initial_temperature", json_float_bits s.an_initial_temperature);
            ("cooling", json_float_bits s.an_cooling);
            ("tams", Json.Int s.an_tams);
            ("widths", json_int_array s.an_widths);
            ("assignment", json_int_array s.an_assignment);
            ("best", json_best_arch s.an_best);
            ("accepted", Json.Int s.an_accepted);
            ("proposed", Json.Int s.an_proposed);
          ] )
  | Race s ->
      ( "race",
        Json.Obj
          [
            ("total_width", Json.Int s.ra_total_width);
            ("tams", json_int_opt s.ra_tams);
            ("max_tams", Json.Int s.ra_max_tams);
            ("initial", json_int_opt s.ra_initial);
            ("tau", Json.Int s.ra_tau);
            ("best", json_best_arch s.ra_best);
            ( "winner",
              match s.ra_winner with
              | None -> Json.Null
              | Some w -> Json.String w );
            ("rounds", Json.Int s.ra_rounds);
            ("slices", Json.Int s.ra_slices);
            ("imports", Json.Int s.ra_imports);
            ("exports", Json.Int s.ra_exports);
            ("slots", Json.List (List.map json_race_slot s.ra_slots));
          ] )

(* Each slot's resume token is embedded as a complete checkpoint
   document — version, checksum and all — so a slot can be extracted
   and handed back to its engine exactly as if it had been saved to its
   own file. *)
and json_race_slot sl =
  Json.Obj
    [
      ("engine", Json.String sl.rs_engine);
      ("done", Json.Bool sl.rs_done);
      ("proved", Json.Bool sl.rs_proved);
      ("improvements", Json.Int sl.rs_improvements);
      ("slices", Json.Int sl.rs_slices);
      ("token", match sl.rs_token with None -> Json.Null | Some t -> to_json t);
    ]

and body_json t =
  let solver, state = json_state t.state in
  Json.Obj
    [
      ("solver", Json.String solver);
      ("soc", match t.soc with None -> Json.Null | Some s -> Json.String s);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
      ("state", state);
    ]

and to_json t =
  let body = body_json t in
  Json.Obj
    [
      ("version", Json.Int version);
      ("checksum", Json.String (checksum_of (Json.to_string body)));
      ("body", body);
    ]

let to_string t = Json.to_string (to_json t)

(* -- parsing --------------------------------------------------------------- *)

(* Strict reader: every failure is a typed [Error], never an exception,
   so a corrupted checkpoint degrades into a clean CLI error message. *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> fail "missing field %S" name

let as_int name = function
  | Json.Int i -> i
  | _ -> fail "field %S must be an integer" name

let as_bool name = function
  | Json.Bool b -> b
  | _ -> fail "field %S must be a boolean" name

let as_float name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "field %S must be a number" name

let as_string name = function
  | Json.String s -> s
  | _ -> fail "field %S must be a string" name

let as_list name = function
  | Json.List l -> l
  | _ -> fail "field %S must be an array" name

let int_field name json = as_int name (field name json)
let counting_field name json =
  let v = int_field name json in
  if v < 0 then fail "field %S must be non-negative" name;
  v

let int_opt_field name json =
  match field name json with Json.Null -> None | v -> Some (as_int name v)

let int_array_field name json =
  as_list name (field name json)
  |> List.map (as_int name)
  |> Array.of_list

let hex64_field name json =
  match field name json with
  | Json.String s when String.length s = 16 ->
      let v = ref 0L in
      String.iter
        (fun c ->
          let d =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | _ -> fail "field %S must be 16 lowercase hex digits" name
          in
          v := Int64.logor (Int64.shift_left !v 4) (Int64.of_int d))
        s;
      !v
  | _ -> fail "field %S must be 16 lowercase hex digits" name

let float_bits_field name json = Int64.float_of_bits (hex64_field name json)

let parse_b_cursor json =
  {
    bc_tams = counting_field "tams" json;
    bc_next_rank = counting_field "next_rank" json;
    bc_enumerated = counting_field "enumerated" json;
    bc_completed = counting_field "completed" json;
    bc_pruned = counting_field "pruned" json;
    bc_best_time = int_opt_field "best_time" json;
  }

let parse_best_arch = function
  | Json.Null -> None
  | json ->
      Some
        {
          ba_widths = int_array_field "widths" json;
          ba_time = int_field "time" json;
          ba_assignment = int_array_field "assignment" json;
        }

let parse_pe json =
  let s =
    {
      pe_total_width = counting_field "total_width" json;
      pe_carry_tau = as_bool "carry_tau" (field "carry_tau" json);
      pe_initial = int_opt_field "initial" json;
      pe_tau = int_field "tau" json;
      pe_best = parse_best_arch (field "best" json);
      pe_done = as_list "done" (field "done" json) |> List.map parse_b_cursor;
      pe_cursor =
        (match field "cursor" json with
        | Json.Null -> None
        | c -> Some (parse_b_cursor c));
      pe_pending =
        as_list "pending" (field "pending" json) |> List.map (as_int "pending");
    }
  in
  List.iter
    (fun c ->
      if c.bc_completed + c.bc_pruned <> c.bc_enumerated then
        fail "TAM count %d breaks enumerated = pruned + evaluated" c.bc_tams)
    (s.pe_done @ Option.to_list s.pe_cursor);
  Partition_evaluate s

let parse_ex json =
  Exhaustive
    {
      ex_total_width = counting_field "total_width" json;
      ex_tams = counting_field "tams" json;
      ex_method =
        (* Absent in documents written before the solver became
           parameterized over the exact method; those were all B&B. *)
        (match Json.member "method" json with
        | None -> "bb"
        | Some m -> (
            match as_string "method" m with
            | ("bb" | "milp") as m -> m
            | other -> fail "unknown exhaustive method %S" other));
      ex_next_rank = counting_field "next_rank" json;
      ex_best =
        (match field "best" json with
        | Json.Null -> None
        | b ->
            Some
              {
                eb_time = int_field "time" b;
                eb_rank = counting_field "rank" b;
                eb_widths = int_array_field "widths" b;
                eb_assignment = int_array_field "assignment" b;
              });
      ex_solved = counting_field "solved" json;
      ex_nodes = counting_field "nodes" json;
    }

let parse_pack json =
  let s =
    {
      pk_total_width = counting_field "total_width" json;
      pk_tams = int_opt_field "tams" json;
      pk_max_tams = counting_field "max_tams" json;
      pk_initial = int_opt_field "initial" json;
      pk_tau = int_field "tau" json;
      pk_best = parse_best_arch (field "best" json);
      pk_next_rank = counting_field "next_rank" json;
      pk_ranks = counting_field "ranks" json;
      pk_packings = counting_field "packings" json;
      pk_candidates = counting_field "candidates" json;
      pk_completed = counting_field "completed" json;
      pk_pruned = counting_field "pruned" json;
      pk_best_makespan = int_opt_field "best_makespan" json;
    }
  in
  if s.pk_completed + s.pk_pruned <> s.pk_candidates then
    fail "pack state breaks candidates = pruned + evaluated";
  if s.pk_next_rank > s.pk_ranks then
    fail "pack cursor is past the end of the rank space";
  Pack s

let parse_an json =
  let s =
    {
      an_total_width = counting_field "total_width" json;
      an_max_tams = counting_field "max_tams" json;
      an_iterations = counting_field "iterations" json;
      an_next_iteration = counting_field "next_iteration" json;
      an_seed = hex64_field "seed" json;
      an_rng = hex64_field "rng" json;
      an_temperature = float_bits_field "temperature" json;
      an_initial_temperature = float_bits_field "initial_temperature" json;
      an_cooling = float_bits_field "cooling" json;
      an_tams = counting_field "tams" json;
      an_widths = int_array_field "widths" json;
      an_assignment = int_array_field "assignment" json;
      an_best = parse_best_arch (field "best" json);
      an_accepted = counting_field "accepted" json;
      an_proposed = counting_field "proposed" json;
    }
  in
  if s.an_next_iteration > s.an_iterations then
    fail "anneal cursor is past the end of the schedule";
  if s.an_tams < 1 || s.an_tams > Array.length s.an_widths then
    fail "anneal TAM count %d out of range" s.an_tams;
  if s.an_accepted > s.an_proposed then fail "anneal accepted exceeds proposed";
  Anneal s

let rec parse_doc json =
  let v = int_field "version" json in
  if v <> version then
    fail "checkpoint version %d is not supported (this build reads %d)" v
      version;
  let declared = as_string "checksum" (field "checksum" json) in
  let body = field "body" json in
  let actual = checksum_of (Json.to_string body) in
  if not (String.equal declared actual) then
    fail "checksum mismatch (%s declared, %s computed): corrupted checkpoint"
      declared actual;
  let state_json = field "state" body in
  let state =
    match as_string "solver" (field "solver" body) with
    | "partition_evaluate" -> parse_pe state_json
    | "exhaustive" -> parse_ex state_json
    | "sweep" -> parse_sweep state_json
    | "pack" -> parse_pack state_json
    | "anneal" -> parse_an state_json
    | "race" -> parse_race state_json
    | other -> fail "unknown solver %S" other
  in
  {
    soc =
      (match field "soc" body with
      | Json.Null -> None
      | s -> Some (as_string "soc" s));
    counters =
      (match field "counters" body with
      | Json.Obj kvs ->
          List.map
            (fun (k, v) ->
              let n = as_int k v in
              if n < 0 then fail "counter %S must be non-negative" k;
              (k, n))
            kvs
      | _ -> fail "field \"counters\" must be an object");
    state;
  }

and parse_race json =
  let s =
    {
      ra_total_width = counting_field "total_width" json;
      ra_tams = int_opt_field "tams" json;
      ra_max_tams = counting_field "max_tams" json;
      ra_initial = int_opt_field "initial" json;
      ra_tau = int_field "tau" json;
      ra_best = parse_best_arch (field "best" json);
      ra_winner =
        (match field "winner" json with
        | Json.Null -> None
        | w -> Some (as_string "winner" w));
      ra_rounds = counting_field "rounds" json;
      ra_slices = counting_field "slices" json;
      ra_imports = counting_field "imports" json;
      ra_exports = counting_field "exports" json;
      ra_slots =
        as_list "slots" (field "slots" json) |> List.map parse_race_slot;
    }
  in
  if s.ra_slots = [] then fail "race checkpoint has no engine slots";
  if
    s.ra_slices
    <> List.fold_left (fun n sl -> n + sl.rs_slices) 0 s.ra_slots
  then fail "race slice total disagrees with the per-engine slices";
  Race s

and parse_race_slot json =
  {
    rs_engine = as_string "engine" (field "engine" json);
    rs_done = as_bool "done" (field "done" json);
    rs_proved = as_bool "proved" (field "proved" json);
    rs_improvements = counting_field "improvements" json;
    rs_slices = counting_field "slices" json;
    rs_token =
      (match field "token" json with
      | Json.Null -> None
      | tj -> Some (parse_doc tj));
  }

and parse_sweep json =
  let s =
    {
      sw_max_tams = counting_field "max_tams" json;
      sw_points =
        as_list "points" (field "points" json)
        |> List.map (fun p ->
               {
                 sp_width = counting_field "width" p;
                 sp_tams = counting_field "tams" p;
                 sp_widths = int_array_field "widths" p;
                 sp_time = int_field "time" p;
                 sp_lower_bound = int_field "lower_bound" p;
                 sp_gap_pct = as_float "gap_pct" (field "gap_pct" p);
                 sp_saturated = as_bool "saturated" (field "saturated" p);
               });
      sw_pending =
        as_list "pending" (field "pending" json) |> List.map (as_int "pending");
      sw_inner =
        (* Absent in documents written before the sweep learned to
           carry the interrupted width's token; those resume at width
           granularity. *)
        (match Json.member "inner" json with
        | None | Some Json.Null -> None
        | Some tj -> Some (parse_doc tj));
    }
  in
  if s.sw_inner <> None && s.sw_pending = [] then
    fail "sweep inner token without a pending width";
  (match s.sw_inner with
  | Some { state = Sweep _; _ } ->
      fail "sweep inner token must not itself be a sweep"
  | Some _ | None -> ());
  Sweep s

let of_json json =
  match parse_doc json with
  | t -> Ok t
  | exception Bad msg -> Error msg

let of_string s =
  match Json.parse s with
  | Error msg -> Error ("not a JSON document: " ^ msg)
  | Ok json -> of_json json

(* -- files ----------------------------------------------------------------- *)

let save path t =
  (* Atomic publish: write the whole document to a sibling temporary
     file, then rename over the destination. A reader (or a crash)
     never sees a half-written checkpoint. *)
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_string t);
        output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated while reading")
  | contents -> (
      match of_string contents with
      | Ok t -> Ok t
      | Error msg -> Error (path ^ ": " ^ msg))

let describe t =
  let soc = match t.soc with None -> "?" | Some s -> s in
  match t.state with
  | Partition_evaluate s ->
      let where =
        match s.pe_cursor with
        | Some c -> Printf.sprintf "B=%d rank %d" c.bc_tams c.bc_next_rank
        | None -> (
            match s.pe_pending with
            | b :: _ -> Printf.sprintf "B=%d rank 0" b
            | [] -> "complete")
      in
      Printf.sprintf "partition_evaluate %s W=%d at %s, %d TAM counts done"
        soc s.pe_total_width where (List.length s.pe_done)
  | Exhaustive s ->
      Printf.sprintf "exhaustive %s W=%d B=%d at rank %d, %d solved" soc
        s.ex_total_width s.ex_tams s.ex_next_rank s.ex_solved
  | Sweep s ->
      Printf.sprintf "sweep %s, %d points done, %d widths pending%s" soc
        (List.length s.sw_points)
        (List.length s.sw_pending)
        (if s.sw_inner = None then "" else " (mid-width token)")
  | Pack s ->
      Printf.sprintf "pack %s W=%d at rank %d/%d, %d candidates evaluated" soc
        s.pk_total_width s.pk_next_rank s.pk_ranks s.pk_completed
  | Anneal s ->
      Printf.sprintf "anneal %s W=%d at iteration %d/%d, %d accepted" soc
        s.an_total_width s.an_next_iteration s.an_iterations s.an_accepted
  | Race s ->
      Printf.sprintf "race %s W=%d [%s] after %d rounds, tau %s" soc
        s.ra_total_width
        (String.concat ","
           (List.map
              (fun sl -> if sl.rs_done then sl.rs_engine ^ "*" else sl.rs_engine)
              s.ra_slots))
        s.ra_rounds
        (if s.ra_tau = max_int then "-" else string_of_int s.ra_tau)
