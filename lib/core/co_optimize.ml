module Obs = Soctam_obs.Obs

type t = {
  architecture : Soctam_tam.Architecture.t;
  heuristic_time : int;
  final_time : int;
  final_proven_optimal : bool;
  partition_stats : Partition_evaluate.b_stats array;
  exact_nodes : int;
  outcome : Outcome.t;
}

let finish ?(stats = Obs.null) ~table ~node_limit
    (pe : Partition_evaluate.result) =
  let widths = pe.Partition_evaluate.widths in
  let times = Time_table.matrix table ~widths in
  let exact =
    Obs.span stats "co_optimize/exact_step" (fun () ->
        Soctam_ilp.Exact.solve_bb ~node_limit
          ~initial:
            (pe.Partition_evaluate.assignment, pe.Partition_evaluate.time)
          ~widths ~times ())
  in
  Obs.add stats ~n:exact.Soctam_ilp.Exact.nodes "co_optimize/exact_nodes";
  let architecture =
    Soctam_tam.Architecture.of_times
      ~times:(fun ~core ~width -> Time_table.time table ~core ~width)
      ~cores:(Time_table.core_count table)
      ~widths
      ~assignment:exact.Soctam_ilp.Exact.assignment
  in
  {
    architecture;
    heuristic_time = pe.Partition_evaluate.time;
    final_time = exact.Soctam_ilp.Exact.time;
    final_proven_optimal = exact.Soctam_ilp.Exact.optimal;
    partition_stats = pe.Partition_evaluate.per_b;
    exact_nodes = exact.Soctam_ilp.Exact.nodes;
    outcome = pe.Partition_evaluate.outcome;
  }

let table_for ?(stats = Obs.null) ?table soc ~total_width =
  match table with
  | Some t ->
      if Time_table.max_width t < total_width then
        invalid_arg "Co_optimize: supplied table narrower than total width";
      t
  | None -> Time_table.build ~stats soc ~max_width:total_width

let run_with (cfg : Run_config.t) soc ~total_width =
  let stats = cfg.Run_config.stats in
  let table =
    table_for ~stats ?table:cfg.Run_config.table soc ~total_width
  in
  let pe =
    Obs.span stats "co_optimize/partition_evaluate" (fun () ->
        Partition_evaluate.run_with cfg ~table ~total_width)
  in
  finish ~stats ~table ~node_limit:cfg.Run_config.node_limit pe

let config ?stats ?(node_limit = 2_000_000) ?(jobs = 1) ?table () =
  let cfg = Run_config.default in
  let cfg = Run_config.with_jobs jobs cfg in
  let cfg = Run_config.with_node_limit node_limit cfg in
  let cfg =
    match stats with None -> cfg | Some s -> Run_config.with_stats s cfg
  in
  match table with None -> cfg | Some t -> Run_config.with_table t cfg

let run ?stats ?(max_tams = 10) ?node_limit ?jobs ?table soc ~total_width =
  let cfg = config ?stats ?node_limit ?jobs ?table () in
  run_with (Run_config.with_max_tams max_tams cfg) soc ~total_width

let run_fixed_tams ?stats ?node_limit ?jobs ?table soc ~total_width ~tams =
  let cfg = config ?stats ?node_limit ?jobs ?table () in
  run_with (Run_config.with_tams tams cfg) soc ~total_width
