module Obs = Soctam_obs.Obs

type t = {
  architecture : Soctam_tam.Architecture.t;
  heuristic_time : int;
  final_time : int;
  final_proven_optimal : bool;
  partition_stats : Partition_evaluate.b_stats array;
  exact_nodes : int;
}

let finish ?(stats = Obs.null) ~table ~node_limit
    (pe : Partition_evaluate.result) =
  let widths = pe.Partition_evaluate.widths in
  let times = Time_table.matrix table ~widths in
  let exact =
    Obs.span stats "co_optimize/exact_step" (fun () ->
        Soctam_ilp.Exact.solve_bb ~node_limit
          ~initial:
            (pe.Partition_evaluate.assignment, pe.Partition_evaluate.time)
          ~widths ~times ())
  in
  Obs.add stats ~n:exact.Soctam_ilp.Exact.nodes "co_optimize/exact_nodes";
  let architecture =
    Soctam_tam.Architecture.of_times
      ~times:(fun ~core ~width -> Time_table.time table ~core ~width)
      ~cores:(Time_table.core_count table)
      ~widths
      ~assignment:exact.Soctam_ilp.Exact.assignment
  in
  {
    architecture;
    heuristic_time = pe.Partition_evaluate.time;
    final_time = exact.Soctam_ilp.Exact.time;
    final_proven_optimal = exact.Soctam_ilp.Exact.optimal;
    partition_stats = pe.Partition_evaluate.per_b;
    exact_nodes = exact.Soctam_ilp.Exact.nodes;
  }

let table_for ?(stats = Obs.null) ?table soc ~total_width =
  match table with
  | Some t ->
      if Time_table.max_width t < total_width then
        invalid_arg "Co_optimize: supplied table narrower than total width";
      t
  | None -> Time_table.build ~stats soc ~max_width:total_width

let run ?(stats = Obs.null) ?(max_tams = 10) ?(node_limit = 2_000_000)
    ?(jobs = 1) ?table soc ~total_width =
  let table = table_for ~stats ?table soc ~total_width in
  let pe =
    Obs.span stats "co_optimize/partition_evaluate" (fun () ->
        Partition_evaluate.run ~stats ~jobs ~table ~total_width ~max_tams ())
  in
  finish ~stats ~table ~node_limit pe

let run_fixed_tams ?(stats = Obs.null) ?(node_limit = 2_000_000) ?(jobs = 1)
    ?table soc ~total_width ~tams =
  let table = table_for ~stats ?table soc ~total_width in
  let pe =
    Obs.span stats "co_optimize/partition_evaluate" (fun () ->
        Partition_evaluate.run_fixed ~stats ~jobs ~table ~total_width ~tams ())
  in
  finish ~stats ~table ~node_limit pe
