type outcome =
  | Assigned of { assignment : int array; tam_times : int array; time : int }
  | Exceeded of int

(* Plain mutable fields, no synchronization: each caller owns its record
   (one per evaluation chunk) and flushes it into an [Obs] collector at
   chunk granularity, so the per-partition hot loop pays only an option
   branch and two or three integer stores. *)
type stats = {
  mutable tried : int;
  mutable early_terminations : int;
  mutable levels_cut : int;
}

let stats () = { tried = 0; early_terminations = 0; levels_cut = 0 }

let record stats ~cores ~assigned ~exceeded =
  match stats with
  | None -> ()
  | Some s ->
      s.tried <- s.tried + assigned;
      if exceeded then begin
        s.early_terminations <- s.early_terminations + 1;
        s.levels_cut <- s.levels_cut + (cores - assigned)
      end

let run_bounded ?stats ~best ~times ~widths () =
  let cores = Array.length times in
  if cores = 0 then invalid_arg "Core_assign.run: no cores";
  let tams = Array.length widths in
  if tams = 0 then invalid_arg "Core_assign.run: no TAMs";
  Array.iter
    (fun row ->
      if Array.length row <> tams then invalid_arg "Core_assign.run: ragged times")
    times;
  let loads = Array.make tams 0 in
  let assignment = Array.make cores (-1) in
  let unassigned = Array.make cores true in
  (* Lines 10-12: TAM with minimum summed time; ties to the widest. *)
  let select_tam () =
    let best_j = ref 0 in
    for j = 1 to tams - 1 do
      if
        loads.(j) < loads.(!best_j)
        || (loads.(j) = loads.(!best_j) && widths.(j) > widths.(!best_j))
      then best_j := j
    done;
    !best_j
  in
  (* Lines 13-16: unassigned core with maximum time on TAM [j]; if tied,
     compare the tied cores on the widest TAM narrower than [j] and take
     the one that would be costliest there. *)
  let select_core j =
    let best_time = ref (-1) in
    for i = 0 to cores - 1 do
      if unassigned.(i) && times.(i).(j) > !best_time then
        best_time := times.(i).(j)
    done;
    let tied = ref [] in
    for i = cores - 1 downto 0 do
      if unassigned.(i) && times.(i).(j) = !best_time then tied := i :: !tied
    done;
    match !tied with
    | [] -> assert false
    | [ i ] -> i
    | first :: _ as candidates ->
        let narrower = ref (-1) in
        for k = 0 to tams - 1 do
          if
            widths.(k) < widths.(j)
            && (!narrower < 0 || widths.(k) > widths.(!narrower))
          then narrower := k
        done;
        if !narrower < 0 then first
        else begin
          let k = !narrower in
          List.fold_left
            (fun acc i -> if times.(i).(k) > times.(acc).(k) then i else acc)
            first candidates
        end
  in
  let rec loop remaining =
    if remaining = 0 then begin
      record stats ~cores ~assigned:cores ~exceeded:false;
      Assigned
        {
          assignment;
          tam_times = loads;
          time = Soctam_util.Intutil.max_element loads;
        }
    end
    else begin
      let j = select_tam () in
      let i = select_core j in
      assignment.(i) <- j;
      unassigned.(i) <- false;
      loads.(j) <- loads.(j) + times.(i).(j);
      (* Lines 18-20: abandon the partition once it cannot beat [best]. *)
      if Soctam_util.Intutil.max_element loads >= best then begin
        let assigned = cores - remaining + 1 in
        record stats ~cores ~assigned ~exceeded:true;
        Exceeded assigned
      end
      else loop (remaining - 1)
    end
  in
  loop cores

let run ?stats ?(best = max_int) ~times ~widths () =
  run_bounded ?stats ~best ~times ~widths ()

let run_table ?stats ?best ~table ~widths () =
  run ?stats ?best ~times:(Time_table.matrix table ~widths) ~widths ()

let run_table_bounded ?stats ~best ~table ~widths () =
  run_bounded ?stats ~best ~times:(Time_table.matrix table ~widths) ~widths ()

(* -- allocation-free direct-table variant ---------------------------------- *)

type scratch = {
  mutable sc_loads : int array;
  mutable sc_assignment : int array;
  mutable sc_unassigned : bool array;
}

let scratch () =
  { sc_loads = [||]; sc_assignment = [||]; sc_unassigned = [||] }

(* The same greedy loop as [run_bounded], reading testing times straight
   out of the table rows ([rows.(i).(widths.(j) - 1)]) instead of a
   per-partition [Time_table.matrix] copy, and reusing caller-owned
   scratch arrays instead of allocating three per call. Kept as a
   deliberate twin rather than an abstraction over [run_bounded]: an
   indirect time lookup in this loop costs on the order of the whole
   remaining loop body, and the equivalence is pinned by a qcheck
   property (test_core.ml) instead of by sharing code. Any behavioral
   edit must land in both. *)
let run_table_direct ?stats ~scratch:s ~best ~table ~widths () =
  let rows = Time_table.rows table in
  let cores = Array.length rows in
  if cores = 0 then invalid_arg "Core_assign.run: no cores";
  let tams = Array.length widths in
  if tams = 0 then invalid_arg "Core_assign.run: no TAMs";
  let table_width = Time_table.max_width table in
  for j = 0 to tams - 1 do
    if widths.(j) < 1 || widths.(j) > table_width then
      invalid_arg "Core_assign.run: width outside the table range"
  done;
  (* Scratch arrays are sized exactly (not merely grown): the
     [Assigned] result aliases them, so their length is part of the
     contract. Re-allocation only happens when the core or TAM count
     changes — once per B value, not per partition. *)
  if Array.length s.sc_loads <> tams then s.sc_loads <- Array.make tams 0
  else Array.fill s.sc_loads 0 tams 0;
  if Array.length s.sc_assignment <> cores then
    s.sc_assignment <- Array.make cores (-1)
  else Array.fill s.sc_assignment 0 cores (-1);
  if Array.length s.sc_unassigned <> cores then
    s.sc_unassigned <- Array.make cores true
  else Array.fill s.sc_unassigned 0 cores true;
  let loads = s.sc_loads in
  let assignment = s.sc_assignment in
  let unassigned = s.sc_unassigned in
  (* Lines 10-12: TAM with minimum summed time; ties to the widest. *)
  let select_tam () =
    let best_j = ref 0 in
    for j = 1 to tams - 1 do
      if
        loads.(j) < loads.(!best_j)
        || (loads.(j) = loads.(!best_j) && widths.(j) > widths.(!best_j))
      then best_j := j
    done;
    !best_j
  in
  (* Lines 13-16: unassigned core with maximum time on TAM [j]; if tied,
     compare the tied cores on the widest TAM narrower than [j] and take
     the one that would be costliest there. *)
  let select_core j =
    let wj = widths.(j) - 1 in
    let best_time = ref (-1) in
    for i = 0 to cores - 1 do
      if unassigned.(i) && rows.(i).(wj) > !best_time then
        best_time := rows.(i).(wj)
    done;
    let tied = ref [] in
    for i = cores - 1 downto 0 do
      if unassigned.(i) && rows.(i).(wj) = !best_time then tied := i :: !tied
    done;
    match !tied with
    | [] -> assert false
    | [ i ] -> i
    | first :: _ as candidates ->
        let narrower = ref (-1) in
        for k = 0 to tams - 1 do
          if
            widths.(k) < widths.(j)
            && (!narrower < 0 || widths.(k) > widths.(!narrower))
          then narrower := k
        done;
        if !narrower < 0 then first
        else begin
          let wk = widths.(!narrower) - 1 in
          List.fold_left
            (fun acc i -> if rows.(i).(wk) > rows.(acc).(wk) then i else acc)
            first candidates
        end
  in
  let rec loop remaining =
    if remaining = 0 then begin
      record stats ~cores ~assigned:cores ~exceeded:false;
      Assigned
        {
          assignment;
          tam_times = loads;
          time = Soctam_util.Intutil.max_element loads;
        }
    end
    else begin
      let j = select_tam () in
      let i = select_core j in
      assignment.(i) <- j;
      unassigned.(i) <- false;
      loads.(j) <- loads.(j) + rows.(i).(widths.(j) - 1);
      (* Lines 18-20: abandon the partition once it cannot beat [best]. *)
      if Soctam_util.Intutil.max_element loads >= best then begin
        let assigned = cores - remaining + 1 in
        record stats ~cores ~assigned ~exceeded:true;
        Exceeded assigned
      end
      else loop (remaining - 1)
    end
  in
  loop cores

(* One pass of the same greedy loop with uniform random tie-breaking. *)
let run_random_once ~rng ~times ~widths =
  let cores = Array.length times in
  let tams = Array.length widths in
  let loads = Array.make tams 0 in
  let assignment = Array.make cores (-1) in
  let unassigned = Array.make cores true in
  let pick_uniform candidates =
    match candidates with
    | [] -> assert false
    | [ x ] -> x
    | _ ->
        Soctam_util.Prng.choose rng (Array.of_list candidates)
  in
  for _ = 1 to cores do
    let min_load = Soctam_util.Intutil.min_element loads in
    let j =
      pick_uniform
        (Soctam_util.Select.filter_indices (fun _ l -> l = min_load) loads)
    in
    let best_time = ref (-1) in
    for i = 0 to cores - 1 do
      if unassigned.(i) && times.(i).(j) > !best_time then
        best_time := times.(i).(j)
    done;
    let tied = ref [] in
    for i = cores - 1 downto 0 do
      if unassigned.(i) && times.(i).(j) = !best_time then tied := i :: !tied
    done;
    let i = pick_uniform !tied in
    assignment.(i) <- j;
    unassigned.(i) <- false;
    loads.(j) <- loads.(j) + times.(i).(j)
  done;
  (assignment, Soctam_util.Intutil.max_element loads)

let run_randomized ~rng ~restarts ~times ~widths () =
  if restarts < 1 then
    invalid_arg "Core_assign.run_randomized: restarts must be >= 1";
  if Array.length times = 0 then
    invalid_arg "Core_assign.run_randomized: no cores";
  if Array.length widths = 0 then
    invalid_arg "Core_assign.run_randomized: no TAMs";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length widths then
        invalid_arg "Core_assign.run_randomized: ragged times")
    times;
  let best = ref (run_random_once ~rng ~times ~widths) in
  for _ = 2 to restarts do
    let cand = run_random_once ~rng ~times ~widths in
    if snd cand < snd !best then best := cand
  done;
  !best
