type entry = { architecture : string; time : int; detail : string }

let run ?(max_tams = 10) soc ~width =
  let table = Soctam_core.Time_table.build soc ~max_width:width in
  let mux = Multiplexing.design_from_table table ~width in
  let daisy = Daisychain.design_from_table table ~soc ~width in
  let bus =
    Soctam_core.Co_optimize.run_with
      Soctam_core.Run_config.(
        default |> with_max_tams max_tams |> with_table table)
      soc ~total_width:width
  in
  let entries =
    [
      {
        architecture = "multiplexing";
        time = mux.Multiplexing.time;
        detail = Printf.sprintf "%d cores serialized at full width"
            (Array.length mux.Multiplexing.core_times);
      };
      {
        architecture = "daisychain";
        time = daisy.Daisychain.time;
        detail =
          Printf.sprintf "bypass penalty %d cycles"
            daisy.Daisychain.bypass_penalty;
      };
      {
        architecture = "test bus (this paper)";
        time = bus.Soctam_core.Co_optimize.final_time;
        detail =
          Format.asprintf "partition %a" Soctam_tam.Architecture.pp_partition
            bus.Soctam_core.Co_optimize.architecture
              .Soctam_tam.Architecture.widths;
      };
    ]
  in
  let entries =
    if width >= Soctam_model.Soc.core_count soc then begin
      let dist = Distribution.design_from_table table ~width in
      {
        architecture = "distribution";
        time = dist.Distribution.time;
        detail =
          Printf.sprintf "allocation %s"
            (Array.to_list dist.Distribution.allocation
            |> List.map string_of_int |> String.concat "+");
      }
      :: entries
    end
    else entries
  in
  List.sort (fun a b -> compare a.time b.time) entries
