module Obs = Soctam_obs.Obs
module Core_data = Soctam_model.Core_data

type stats = { hits : int; misses : int; evictions : int; entries : int }

(* One cached core: the widest front computed so far plus an LRU stamp.
   [front.(w - 1)] is the core's best testing time at wrapper width
   [w], a running minimum over chain counts ([Design.time_table]), so
   the front for a narrower [max_width] is literally a prefix of a
   wider one — the cache stores only the widest and serves narrower
   requests with [Array.sub]. *)
type entry = { mutable front : int array; mutable stamp : int }

(* Module-level cache shared by every evaluation in the process:
   fronts depend only on core content, not on which partition or SOC
   instance is asking. All state below is guarded by [mutex]; fronts
   handed out are treated as immutable by every caller ([Time_table]
   stores them as rows and only reads). *)
let mutex = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let cap = ref 256
let clock = ref 0
let hit_count = ref 0
let miss_count = ref 0
let eviction_count = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* The cache key is the core's test content — every field
   [Design.with_chain_count] reads — and deliberately not its [id] or
   [name]: distinct cores with identical wrapper behavior (common in
   synthetic SOC families) share one entry. *)
let key (core : Core_data.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int core.Core_data.inputs);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int core.Core_data.outputs);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int core.Core_data.bidirs);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int core.Core_data.patterns);
  Buffer.add_char b ':';
  Array.iter
    (fun len ->
      Buffer.add_string b (string_of_int len);
      Buffer.add_char b ',')
    core.Core_data.scan_chains;
  Buffer.contents b

(* Drop the least recently touched entry; O(entries) scan, amortized
   into the rare miss-at-capacity path. *)
let evict_one () =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove table k;
      incr eviction_count
  | None -> ()

let set_capacity n =
  if n < 0 then invalid_arg "Front.set_capacity: capacity must be >= 0";
  locked (fun () ->
      cap := n;
      while Hashtbl.length table > n do
        evict_one ()
      done)

let capacity () = locked (fun () -> !cap)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0;
      eviction_count := 0)

let stats () =
  locked (fun () ->
      {
        hits = !hit_count;
        misses = !miss_count;
        evictions = !eviction_count;
        entries = Hashtbl.length table;
      })

let time_table ?(stats = Obs.null) core ~max_width =
  if max_width < 1 then
    invalid_arg "Front.time_table: max_width must be >= 1";
  let value, hit =
    locked (fun () ->
        if !cap = 0 then (Design.time_table core ~max_width, false)
        else begin
          incr clock;
          let k = key core in
          match Hashtbl.find_opt table k with
          | Some e when Array.length e.front >= max_width ->
              incr hit_count;
              e.stamp <- !clock;
              let f =
                if Array.length e.front = max_width then e.front
                else Array.sub e.front 0 max_width
              in
              (f, true)
          | Some e ->
              (* Known core, wider request: recompute at the new width
                 and keep the wider front (prefix-stability makes it
                 serve every earlier width too). *)
              incr miss_count;
              e.stamp <- !clock;
              let f = Design.time_table core ~max_width in
              e.front <- f;
              (f, false)
          | None ->
              incr miss_count;
              if Hashtbl.length table >= !cap then evict_one ();
              let f = Design.time_table core ~max_width in
              Hashtbl.replace table k { front = f; stamp = !clock };
              (f, false)
        end)
  in
  if Obs.enabled stats then
    Obs.add stats
      (if hit then "wrapper/front_hits" else "wrapper/front_misses");
  value
