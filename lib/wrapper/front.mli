(** Process-wide memo cache for per-core wrapper Pareto fronts.

    [Design.time_table core ~max_width] — the core's best testing time
    at every wrapper width, the paper's per-core Pareto front — costs
    O(max_width * chains) per call, and the co-optimization layers ask
    for the same cores' fronts once per table build, per sweep width,
    per solver invocation. The fronts depend only on the core's test
    content, so this module keeps a bounded, process-wide,
    domain-safe (mutex-guarded) cache in front of the computation.

    Key: the core's content fields ([inputs]/[outputs]/[bidirs]/
    [patterns]/[scan_chains]) — deliberately not its [id] or [name], so
    content-identical cores share one entry. Bound: {!set_capacity}
    entries, LRU eviction. Width handling exploits that
    [Design.time_table] is a running minimum over chain counts, making
    a narrower front a strict prefix of a wider one: the cache stores
    the widest front computed per core and serves narrower requests
    from its prefix, so sweeping widths downward never recomputes.

    Returned arrays must be treated as immutable — hits alias the
    cached array (and each other). [Time_table] stores them as its
    rows and only reads; so must every other caller.

    The rectangle-packing line of work (arXiv 1008.3320) draws each
    core's candidate rectangles from exactly this front, so the cache
    is shared infrastructure, not a solver-local optimization. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val time_table :
  ?stats:Soctam_obs.Obs.t ->
  Soctam_model.Core_data.t ->
  max_width:int ->
  int array
(** Memoized [Design.time_table]. Byte-identical to the uncached
    computation at every width (tested); do not mutate the result.
    [stats] bumps [wrapper/front_hits] / [wrapper/front_misses].
    @raise Invalid_argument when [max_width < 1]. *)

val set_capacity : int -> unit
(** Maximum cached cores (default 256; generous for every published
    ITC'02 SOC). Shrinking evicts immediately; [0] disables caching —
    every call computes fresh. @raise Invalid_argument when negative. *)

val capacity : unit -> int
(** The current entry bound. *)

val reset : unit -> unit
(** Empty the cache and zero the counters (capacity is kept). Tests
    use this to isolate hit-rate assertions. *)

val stats : unit -> stats
(** Lifetime counters since the last {!reset}, plus the live entry
    count. *)
