(** Rectangle test schedules: where every core's test sits in
    (wire, time) space.

    This is the artifact the packing certifier
    ({!Soctam_check.Schedule_check.certify_packing}) validates: each
    slot claims a wire band [[x, x + width)] of the strip and a time
    interval [[start, finish)], and a sound schedule tests every core
    exactly once, inside the strip, without overlap, for exactly the
    core's testing time at the slot's width. Both the raw level
    packings and the engine's final test-bus architectures render to
    this one type, so one certifier covers both. *)

type slot = {
  core : int;  (** 0-based core index *)
  x : int;  (** first wire of the slot's band *)
  width : int;  (** wires used *)
  start : int;  (** first cycle *)
  finish : int;  (** one past the last cycle *)
}

type t = {
  total_width : int;  (** the strip (TAM) width the schedule targets *)
  makespan : int;  (** reported completion time: max over [finish] *)
  slots : slot list;
}

val of_packing : Level_pack.packing -> t
(** A level packing as a schedule: each placed rectangle becomes a
    slot at its packed position, and the makespan is the packing
    height. *)

val of_architecture :
  table:Soctam_core.Time_table.t -> Soctam_tam.Architecture.t -> t
(** A test-bus architecture as a schedule: TAM [j] owns the wire band
    after its predecessors' widths, and its cores run back to back in
    core-index order — the order is immaterial to the makespan, since
    a TAM's completion is the sum of its core times either way. The
    makespan is the architecture's testing time. *)
