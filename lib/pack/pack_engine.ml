module Obs = Soctam_obs.Obs
module Pool = Soctam_util.Pool
module Shared_min = Soctam_util.Pool.Shared_min
module Rc = Soctam_core.Run_config
module Outcome = Soctam_core.Outcome
module Checkpoint = Soctam_core.Checkpoint
module Core_assign = Soctam_core.Core_assign
module Tt = Soctam_core.Time_table

type result = {
  widths : int array;
  time : int;
  assignment : int array;
  ranks : int;
  packings : int;
  candidates : int;
  completed : int;
  pruned : int;
  best_makespan : int option;
  outcome : Outcome.t;
}

type best = {
  mutable b_widths : int array;
  mutable b_time : int;
  mutable b_assignment : int array;
}

(* -- rank space ------------------------------------------------------------ *)

(* The deterministic search sequence. Even-split ranks come first: they
   are O(cores) each, they seed the pruning bound before any packing
   runs, and they make the engine's floor the naive balanced design.
   Then one rank per (width cap, heuristic): rectangles at Pareto cap
   [1 + (r - n_even) / 3], packed by heuristic [(r - n_even) mod 3].
   Last the express ranks, one per express width [e = 1 .. W - 1]: the
   distillation of a degenerate two-column packing — a full-height
   column of width [e] beside an evenly split remainder — the
   one-bottleneck-core shape the level packers rarely reach. *)
type gen = Even of int | Pack of int * Level_pack.order | Express of int

type space = {
  sp_even : int array;
  sp_orders : Level_pack.order array;
  sp_width : int;
}

let space ~total_width ~b_values =
  {
    sp_even = Array.of_list b_values;
    sp_orders = Array.of_list Level_pack.orders;
    sp_width = total_width;
  }

let rank_count sp =
  Array.length sp.sp_even
  + (Array.length sp.sp_orders * sp.sp_width)
  + max 0 (sp.sp_width - 1)

let gen_of_rank sp r =
  let n_even = Array.length sp.sp_even in
  let n_pack = Array.length sp.sp_orders * sp.sp_width in
  if r < n_even then Even sp.sp_even.(r)
  else if r < n_even + n_pack then
    let k = r - n_even in
    let n_orders = Array.length sp.sp_orders in
    Pack ((k / n_orders) + 1, sp.sp_orders.(k mod n_orders))
  else Express (r - n_even - n_pack + 1)

let even_widths ~total_width parts =
  let base = total_width / parts and extra = total_width mod parts in
  Array.init parts (fun i -> if i < extra then base + 1 else base)

(* -- level distillation ---------------------------------------------------- *)

let desc a b = Int.compare b a

(* How a level's unused wires are spread before the lane widths become
   a partition: round-robin over all lanes, everything to the widest
   lane, or everything to the narrowest. Each padding reaches a
   different basin — balanced lanes, one express lane for the
   bottleneck core, or a rescued narrow straggler. *)
type padding = Spread | To_widest | To_narrowest

let paddings = [ Spread; To_widest; To_narrowest ]

(* Turn one packing level's lane widths into a full-width partition:
   pad the strip's unused wires by [padding], then adjust the lane
   count — merge the two narrowest while over the TAM limit, split the
   widest in half while under a fixed B. Splitting is always possible:
   the lane sum stays [total_width >= B], so while fewer than B lanes
   exist some lane has width >= 2. *)
let distill_level ~total_width ~tams ~max_tams ~padding
    (slots : Level_pack.placed list) =
  let lanes =
    List.map (fun (p : Level_pack.placed) -> p.Level_pack.p_w) slots
  in
  let arr = Array.of_list lanes in
  Array.sort desc arr;
  let k = Array.length arr in
  let leftover = total_width - Array.fold_left ( + ) 0 arr in
  (match padding with
  | Spread ->
      for i = 0 to leftover - 1 do
        arr.(i mod k) <- arr.(i mod k) + 1
      done
  | To_widest -> arr.(0) <- arr.(0) + leftover
  | To_narrowest -> arr.(k - 1) <- arr.(k - 1) + leftover);
  let lanes = ref (Array.to_list arr) in
  let count = ref k in
  let resort () = lanes := List.sort desc !lanes in
  let merge_smallest () =
    match List.rev !lanes with
    | a :: b :: rest ->
        lanes := List.rev ((a + b) :: rest);
        decr count;
        resort ()
    | _ -> assert false
  in
  (match tams with
  | None ->
      while !count > max_tams do
        merge_smallest ()
      done
  | Some b ->
      while !count > b do
        merge_smallest ()
      done;
      while !count < b do
        (match !lanes with
        | widest :: rest ->
            lanes := ((widest + 1) / 2) :: (widest / 2) :: rest;
            incr count
        | [] -> assert false);
        resort ()
      done);
  resort ();
  Array.of_list !lanes

let arrays_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
  !ok

(* The candidate partitions of one rank, in deterministic order with
   within-rank duplicates removed (consecutive levels of a packing
   often distill to the same partition; first occurrence wins). *)
let candidates_of_rank ~table ~total_width ~tams ~max_tams sp r =
  match gen_of_rank sp r with
  | Even b -> ([ even_widths ~total_width b ], 0, None)
  | Express e ->
      (* One full-height lane of width [e], the remaining [W - e] wires
         split evenly over k further lanes; every permitted k (P_NPAW)
         or exactly B - 1 (P_PAW). Lanes stay >= 1 by the k cap. *)
      let rest = total_width - e in
      let ks =
        match tams with
        | Some b -> if b >= 2 && rest >= b - 1 then [ b - 1 ] else []
        | None -> Soctam_util.Intutil.range 1 (min (max_tams - 1) rest)
      in
      let cands =
        List.map
          (fun k ->
            let arr = Array.append [| e |] (even_widths ~total_width:rest k) in
            Array.sort desc arr;
            arr)
          ks
      in
      (cands, 0, None)
  | Pack (cap, order) ->
      let rects = Rect_build.rects table ~cap in
      let packing = Level_pack.pack order ~width:total_width rects in
      let seen = ref [] in
      List.iter
        (fun (l : Level_pack.level) ->
          List.iter
            (fun padding ->
              let cand =
                distill_level ~total_width ~tams ~max_tams ~padding
                  l.Level_pack.l_slots
              in
              if not (List.exists (fun c -> arrays_equal c cand) !seen) then
                seen := cand :: !seen)
            paddings)
        packing.Level_pack.pk_levels;
      (List.rev !seen, 1, Some packing.Level_pack.pk_height)

(* -- slice evaluation ------------------------------------------------------ *)

let merge_makespan a b =
  match (a, b) with None, t | t, None -> t | Some x, Some y -> Some (min x y)

let flush_counters stats ~packings ~cands ~pruned ~evaluated ~ca =
  if Obs.enabled stats then begin
    Obs.add stats ~n:packings "pack/packings";
    Obs.add stats ~n:cands "pack/candidates";
    Obs.add stats ~n:pruned "pack/pruned";
    Obs.add stats ~n:evaluated "pack/evaluated";
    match ca with
    | None -> ()
    | Some (c : Core_assign.stats) ->
        Obs.add stats ~n:c.Core_assign.tried "core_assign/assignments_tried";
        Obs.add stats ~n:c.Core_assign.early_terminations
          "core_assign/early_terminations";
        Obs.add stats ~n:c.Core_assign.levels_cut "core_assign/levels_cut"
  end

let ca_stats stats =
  if Obs.enabled stats then Some (Core_assign.stats ()) else None

type slice = {
  sl_packings : int;
  sl_candidates : int;
  sl_completed : int;
  sl_pruned : int;
  sl_best_makespan : int option;
  sl_tried : int;
  sl_early : int;
  sl_levels : int;
  sl_publications : int;
}

(* The best candidate found inside one contiguous rank chunk. [c_rank]
   is the generator rank the candidate came from: ranks are disjoint
   across chunks and candidates within a rank are evaluated in a fixed
   order, so the (time, rank) minimum over chunks reproduces the
   sequential first-strict-improvement winner at any job count — the
   same argument as [Partition_evaluate]'s reduction. *)
type chunk_best = {
  mutable c_time : int;
  mutable c_rank : int;
  mutable c_widths : int array;
  mutable c_assignment : int array;
}

type chunk_result = {
  ch_packings : int;
  ch_candidates : int;
  ch_completed : int;
  ch_pruned : int;
  ch_best_makespan : int option;
  ch_best : chunk_best;
  ch_tried : int;
  ch_early : int;
  ch_levels : int;
}

type wstate = {
  w_scratch : Core_assign.scratch;
  w_mirror : Shared_min.mirror;
}

let evaluate_chunk ?(stats = Obs.null) ~state ~prune_ties ~cap ~table
    ~total_width ~tams ~max_tams ~sp ~lo ~hi () =
  let packings = ref 0 in
  let cands = ref 0 in
  let completed = ref 0 in
  let pruned = ref 0 in
  let makespan = ref None in
  let ca = ca_stats stats in
  let mir = state.w_mirror in
  let cb =
    { c_time = max_int; c_rank = max_int; c_widths = [||]; c_assignment = [||] }
  in
  for rank = lo to hi - 1 do
    let rank_cands, rank_packings, rank_makespan =
      candidates_of_rank ~table ~total_width ~tams ~max_tams sp rank
    in
    packings := !packings + rank_packings;
    makespan := merge_makespan !makespan rank_makespan;
    List.iter
      (fun widths ->
        incr cands;
        let bound = Shared_min.mirror_get mir in
        (* Alone, prune ties like the sequential paper loop; racing,
           ties must complete so the deterministic reduction sees their
           rank (see [Partition_evaluate.evaluate_chunk]). An imported
           bound caps the threshold at every job count, so foreign
           times never enter the (time, rank) reduction. *)
        let threshold =
          let t =
            if prune_ties then bound
            else if bound = max_int then max_int
            else bound + 1
          in
          if cap < t then cap else t
        in
        match
          Core_assign.run_table_direct ?stats:ca ~scratch:state.w_scratch
            ~best:threshold ~table ~widths ()
        with
        | Core_assign.Exceeded _ -> incr pruned
        | Core_assign.Assigned { assignment; time; _ } ->
            incr completed;
            if time < bound then Obs.event_v stats time "tau";
            Shared_min.mirror_improve mir time;
            if time < cb.c_time then begin
              cb.c_time <- time;
              cb.c_rank <- rank;
              (* [widths] is freshly built per rank, but [assignment]
                 aliases the worker scratch and must be copied. *)
              cb.c_widths <- widths;
              cb.c_assignment <- Array.copy assignment
            end)
      rank_cands
  done;
  flush_counters stats ~packings:!packings ~cands:!cands ~pruned:!pruned
    ~evaluated:!completed ~ca;
  {
    ch_packings = !packings;
    ch_candidates = !cands;
    ch_completed = !completed;
    ch_pruned = !pruned;
    ch_best_makespan = !makespan;
    ch_best = cb;
    ch_tried = (match ca with None -> 0 | Some c -> c.Core_assign.tried);
    ch_early =
      (match ca with None -> 0 | Some c -> c.Core_assign.early_terminations);
    ch_levels = (match ca with None -> 0 | Some c -> c.Core_assign.levels_cut);
  }

(* One slice [lo, hi) of the rank sequence on the work-stealing team.
   Ranks are coarse units (a whole packing plus its candidate
   evaluations), so chunks shrink to single ranks ([min_chunk:1]) —
   the default granularity would serialize the whole space. *)
let evaluate_slice ?(stats = Obs.null) ~team ~cap ~table ~total_width ~tams
    ~max_tams ~sp ~tau ~lo ~hi best =
  let shared = Shared_min.create !tau in
  let size = Pool.Team.size team in
  let prune_ties = size = 1 in
  let states =
    Array.init size (fun _ ->
        {
          w_scratch = Core_assign.scratch ();
          w_mirror = Shared_min.mirror shared;
        })
  in
  let chunks =
    Obs.span stats "pack/evaluate_slice" (fun () ->
        Pool.map_chunks ~stats ~min_chunk:1 team ~length:(hi - lo)
          ~f:(fun ~worker ~lo:clo ~hi:chi ->
            (evaluate_chunk ~stats ~state:states.(worker) ~prune_ties ~cap
               ~table ~total_width ~tams ~max_tams ~sp ~lo:(lo + clo)
               ~hi:(lo + chi) ()
             [@soctam.allow "DOM-ESCAPE"]
             (* [states] is indexed by the worker slot, and the
                scheduler runs at most one chunk per slot at a time:
                each element is effectively worker-local. *)))
          ())
  in
  tau := Shared_min.get shared;
  let publications = Shared_min.publications shared in
  Obs.add stats ~n:publications "pool/tau_publications";
  let winner =
    Array.fold_left
      (fun acc (chunk : chunk_result Pool.chunk) ->
        let cb = chunk.Pool.c_value.ch_best in
        if Array.length cb.c_widths = 0 then acc
        else
          match acc with
          | Some b
            when b.c_time < cb.c_time
                 || (b.c_time = cb.c_time && b.c_rank < cb.c_rank) ->
              Some b
          | Some _ | None -> Some cb)
      None chunks
  in
  (match winner with
  | Some cb when cb.c_time < best.b_time ->
      best.b_time <- cb.c_time;
      best.b_widths <- cb.c_widths;
      best.b_assignment <- cb.c_assignment
  | Some _ | None -> ());
  let sum f = Array.fold_left (fun acc c -> acc + f c.Pool.c_value) 0 chunks in
  {
    sl_packings = sum (fun c -> c.ch_packings);
    sl_candidates = sum (fun c -> c.ch_candidates);
    sl_completed = sum (fun c -> c.ch_completed);
    sl_pruned = sum (fun c -> c.ch_pruned);
    sl_best_makespan =
      Array.fold_left
        (fun acc c -> merge_makespan acc c.Pool.c_value.ch_best_makespan)
        None chunks;
    sl_tried = sum (fun c -> c.ch_tried);
    sl_early = sum (fun c -> c.ch_early);
    sl_levels = sum (fun c -> c.ch_levels);
    sl_publications = publications;
  }

(* -- checkpoint engine ----------------------------------------------------- *)

type extras = {
  mutable x_tried : int;
  mutable x_early : int;
  mutable x_levels : int;
  mutable x_publications : int;
}

let restore_check cond msg = if not cond then invalid_arg msg

let restore_pack ~cfg ~total_width ~ranks (cp : Checkpoint.t) =
  match cp.Checkpoint.state with
  | Checkpoint.Pack s ->
      restore_check
        (s.Checkpoint.pk_total_width = total_width)
        "Pack_engine: resume checkpoint is for a different total width";
      restore_check
        (s.Checkpoint.pk_tams = cfg.Rc.tams
        && s.Checkpoint.pk_max_tams = cfg.Rc.max_tams)
        "Pack_engine: resume checkpoint was taken under a different TAM \
         configuration";
      restore_check
        (s.Checkpoint.pk_initial = cfg.Rc.initial_best)
        "Pack_engine: resume checkpoint was taken under a different pruning \
         configuration";
      restore_check
        (s.Checkpoint.pk_ranks = ranks)
        "Pack_engine: resume checkpoint does not match this rank space";
      (match (cp.Checkpoint.soc, cfg.Rc.soc_name) with
      | Some a, Some b ->
          restore_check (String.equal a b)
            "Pack_engine: resume checkpoint is for a different SOC"
      | _ -> ());
      s
  | Checkpoint.Partition_evaluate _ | Checkpoint.Exhaustive _
  | Checkpoint.Sweep _ | Checkpoint.Anneal _ | Checkpoint.Race _ ->
      invalid_arg "Pack_engine: resume checkpoint is for a different solver"

exception Stopped of Outcome.t

let run_with (cfg : Rc.t) ~table ~total_width =
  if total_width < 1 then invalid_arg "Pack_engine: total_width must be >= 1";
  if cfg.Rc.max_tams < 1 then invalid_arg "Pack_engine: max_tams must be >= 1";
  if Tt.max_width table < total_width then
    invalid_arg "Pack_engine: time table narrower than total width";
  let tams = cfg.Rc.tams in
  let b_values =
    match tams with
    | Some b ->
        if b > total_width then invalid_arg "Pack_engine: more TAMs than width";
        if b < 1 then invalid_arg "Pack_engine: tams must be >= 1";
        [ b ]
    | None -> Soctam_util.Intutil.range 1 (min cfg.Rc.max_tams total_width)
  in
  let max_tams = cfg.Rc.max_tams in
  let sp = space ~total_width ~b_values in
  let ranks = rank_count sp in
  let stats = cfg.Rc.stats in
  let initial =
    match cfg.Rc.initial_best with Some t -> t | None -> max_int
  in
  let cap = match cfg.Rc.tau_import with Some b -> b | None -> max_int in
  let restored =
    Option.map (restore_pack ~cfg ~total_width ~ranks) cfg.Rc.resume
  in
  (* Replay the interrupted run's solver-owned counters so the resumed
     collector converges to an uninterrupted run's totals. *)
  (match cfg.Rc.resume with
  | Some cp when Obs.enabled stats && cfg.Rc.resume_replay ->
      List.iter
        (fun (name, n) -> if n > 0 then Obs.add stats ~n name)
        cp.Checkpoint.counters
  | Some _ | None -> ());
  let extras =
    let get name =
      match cfg.Rc.resume with
      | None -> 0
      | Some cp -> (
          match List.assoc_opt name cp.Checkpoint.counters with
          | Some n -> n
          | None -> 0)
    in
    {
      x_tried = get "core_assign/assignments_tried";
      x_early = get "core_assign/early_terminations";
      x_levels = get "core_assign/levels_cut";
      x_publications = get "pool/tau_publications";
    }
  in
  let best =
    match restored with
    | Some { Checkpoint.pk_best = Some b; _ } ->
        {
          b_widths = b.Checkpoint.ba_widths;
          b_time = b.Checkpoint.ba_time;
          b_assignment = b.Checkpoint.ba_assignment;
        }
    | Some { Checkpoint.pk_best = None; _ } | None ->
        { b_widths = [||]; b_time = initial; b_assignment = [||] }
  in
  let tau =
    ref (match restored with Some s -> s.Checkpoint.pk_tau | None -> initial)
  in
  let next =
    ref
      (match restored with Some s -> s.Checkpoint.pk_next_rank | None -> 0)
  in
  let packings =
    ref (match restored with Some s -> s.Checkpoint.pk_packings | None -> 0)
  in
  let cands =
    ref (match restored with Some s -> s.Checkpoint.pk_candidates | None -> 0)
  in
  let completed =
    ref (match restored with Some s -> s.Checkpoint.pk_completed | None -> 0)
  in
  let pruned =
    ref (match restored with Some s -> s.Checkpoint.pk_pruned | None -> 0)
  in
  let makespan =
    ref
      (match restored with
      | Some s -> s.Checkpoint.pk_best_makespan
      | None -> None)
  in
  let deadline =
    Option.map
      (fun budget -> Soctam_util.Timer.now_s () +. budget)
      cfg.Rc.time_budget
  in
  let counters_now () =
    List.filter
      (fun (_, n) -> n > 0)
      [
        ("pack/packings", !packings);
        ("pack/candidates", !cands);
        ("pack/evaluated", !completed);
        ("pack/pruned", !pruned);
        ("core_assign/assignments_tried", extras.x_tried);
        ("core_assign/early_terminations", extras.x_early);
        ("core_assign/levels_cut", extras.x_levels);
        ("pool/tau_publications", extras.x_publications);
      ]
  in
  let checkpoint_now () =
    {
      Checkpoint.soc = cfg.Rc.soc_name;
      counters = counters_now ();
      state =
        Checkpoint.Pack
          {
            Checkpoint.pk_total_width = total_width;
            pk_tams = tams;
            pk_max_tams = max_tams;
            pk_initial = cfg.Rc.initial_best;
            pk_tau = !tau;
            pk_best =
              (if Array.length best.b_widths = 0 then None
               else
                 Some
                   {
                     Checkpoint.ba_widths = best.b_widths;
                     ba_time = best.b_time;
                     ba_assignment = best.b_assignment;
                   });
            pk_next_rank = !next;
            pk_ranks = ranks;
            pk_packings = !packings;
            pk_candidates = !cands;
            pk_completed = !completed;
            pk_pruned = !pruned;
            pk_best_makespan = !makespan;
          };
    }
  in
  let write_checkpoint cp =
    match cfg.Rc.checkpoint_path with
    | None -> ()
    | Some path -> (
        match Checkpoint.save path cp with
        | Ok () -> ()
        | Error msg -> failwith ("checkpoint write failed: " ^ msg))
  in
  let slices_done = ref 0 in
  let boundary () =
    (match cfg.Rc.slice_limit with
    | Some limit when !slices_done >= limit ->
        let cp = checkpoint_now () in
        write_checkpoint cp;
        raise (Stopped (Outcome.Budget_exhausted cp))
    | Some _ | None -> ());
    if cfg.Rc.cancel () then begin
      let cp = checkpoint_now () in
      write_checkpoint cp;
      raise (Stopped (Outcome.Interrupted cp))
    end;
    (match deadline with
    | Some d when Soctam_util.Timer.now_s () > d ->
        let cp = checkpoint_now () in
        write_checkpoint cp;
        raise (Stopped (Outcome.Budget_exhausted cp))
    | Some _ | None -> ());
    write_checkpoint (checkpoint_now ())
  in
  let slice_len = Rc.slice_size cfg ~length:ranks in
  let outcome =
    Pool.Team.with_team ~oversubscribe:cfg.Rc.oversubscribe
      ~jobs:(max 1 cfg.Rc.jobs) (fun team ->
        try
          while !next < ranks do
            boundary ();
            let lo = !next in
            let hi = min (lo + slice_len) ranks in
            let s =
              evaluate_slice ~stats ~team ~cap ~table ~total_width ~tams
                ~max_tams ~sp ~tau ~lo ~hi best
            in
            next := hi;
            incr slices_done;
            packings := !packings + s.sl_packings;
            cands := !cands + s.sl_candidates;
            completed := !completed + s.sl_completed;
            pruned := !pruned + s.sl_pruned;
            makespan := merge_makespan !makespan s.sl_best_makespan;
            extras.x_tried <- extras.x_tried + s.sl_tried;
            extras.x_early <- extras.x_early + s.sl_early;
            extras.x_levels <- extras.x_levels + s.sl_levels;
            extras.x_publications <- extras.x_publications + s.sl_publications
          done;
          (match cfg.Rc.checkpoint_path with
          | Some path when Sys.file_exists path -> (
              try Sys.remove path with Sys_error _ -> ())
          | Some _ | None -> ());
          Outcome.Complete
        with Stopped o -> o)
  in
  if Array.length best.b_widths = 0 then begin
    (* Nothing beat the seed (or the budget expired before the first
       slice): fall back to the even split over the first permitted TAM
       count, exactly like [Partition_evaluate]. *)
    let parts = match b_values with [] -> 1 | b :: _ -> min b total_width in
    let widths = even_widths ~total_width parts in
    match Core_assign.run_table ~table ~widths () with
    | Core_assign.Assigned { assignment; time; _ } ->
        {
          widths;
          time;
          assignment;
          ranks;
          packings = !packings;
          candidates = !cands;
          completed = !completed;
          pruned = !pruned;
          best_makespan = !makespan;
          outcome;
        }
    | Core_assign.Exceeded _ -> assert false
  end
  else
    {
      widths = best.b_widths;
      time = best.b_time;
      assignment = best.b_assignment;
      ranks;
      packings = !packings;
      candidates = !cands;
      completed = !completed;
      pruned = !pruned;
      best_makespan = !makespan;
      outcome;
    }

let architecture ~table r =
  Soctam_tam.Architecture.of_times
    ~times:(fun ~core ~width -> Tt.time table ~core ~width)
    ~cores:(Tt.core_count table) ~widths:r.widths ~assignment:r.assignment

let schedule ~table r = Pack_schedule.of_architecture ~table (architecture ~table r)

module E : Soctam_core.Engine.S = struct
  let name = "pack"

  let caps =
    {
      Soctam_core.Engine.parallel = true;
      imports_tau = true;
      needs_fixed_tams = false;
      free_tams_only = false;
      proves = false;
    }

  let cert =
    { Soctam_core.Engine.cert_exact = true; cert_packing = true }

  let owns_token = function Checkpoint.Pack _ -> true | _ -> false

  let run (cfg : Rc.t) (inst : Soctam_core.Engine.instance) =
    let r =
      run_with cfg ~table:inst.Soctam_core.Engine.table
        ~total_width:inst.Soctam_core.Engine.total_width
    in
    {
      Soctam_core.Engine.r_widths = r.widths;
      r_time = r.time;
      r_assignment = r.assignment;
      r_outcome = r.outcome;
      r_notes =
        [
          Printf.sprintf "%d ranks, %d candidates (%d pruned)%s" r.ranks
            r.candidates r.pruned
            (match r.best_makespan with
            | None -> ""
            | Some h -> Printf.sprintf ", best raw packing height %d" h);
        ];
    }
end

let engine : Soctam_core.Engine.t = (module E)
