module Tt = Soctam_core.Time_table
module Arch = Soctam_tam.Architecture

type slot = { core : int; x : int; width : int; start : int; finish : int }
type t = { total_width : int; makespan : int; slots : slot list }

let of_packing (p : Level_pack.packing) =
  {
    total_width = p.Level_pack.pk_width;
    makespan = p.Level_pack.pk_height;
    slots =
      List.map
        (fun (s : Level_pack.placed) ->
          {
            core = s.Level_pack.p_id;
            x = s.Level_pack.p_x;
            width = s.Level_pack.p_w;
            start = s.Level_pack.p_y;
            finish = s.Level_pack.p_y + s.Level_pack.p_h;
          })
        (Level_pack.slots p);
  }

let of_architecture ~table (arch : Arch.t) =
  let widths = arch.Arch.widths in
  let tams = Array.length widths in
  let offsets = Array.make tams 0 in
  for j = 1 to tams - 1 do
    offsets.(j) <- offsets.(j - 1) + widths.(j - 1)
  done;
  let clock = Array.make tams 0 in
  let slots =
    Array.to_list
      (Array.mapi
         (fun core j ->
           let d = Tt.time table ~core ~width:widths.(j) in
           let start = clock.(j) in
           clock.(j) <- start + d;
           { core; x = offsets.(j); width = widths.(j); start; finish = start + d })
         arch.Arch.assignment)
  in
  {
    total_width = Soctam_util.Intutil.sum widths;
    makespan = arch.Arch.time;
    slots;
  }
