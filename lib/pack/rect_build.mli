(** Rectangle construction from per-core wrapper Pareto fronts.

    A core tested at TAM width [w] is a [(w x T_i(w))] rectangle; the
    times come from a {!Soctam_core.Time_table}, whose rows are served
    by the process-wide {!Soctam_wrapper.Front} memo cache — the
    rectangle engine draws from exactly the fronts every other solver
    shares. The front is a running minimum over chain counts, so
    [T_i] is monotone non-increasing in [w]; the interesting width
    choices are the Pareto steps, and a width cap selects one
    rectangle per core. *)

val rects : Soctam_core.Time_table.t -> cap:int -> Level_pack.rect list
(** One rectangle per core under a width cap: the height is the core's
    best time using at most [cap] wires, [T_i(cap)], and the width is
    the {e narrowest} width achieving that time — wires beyond the
    Pareto step carry no test data, and trimming them is what lets a
    level hold more cores. [r_id] is the 0-based core index; the list
    is in core order.
    @raise Invalid_argument when [cap < 1] or the table is narrower
    than [cap]. *)
