type rect = { r_id : int; r_w : int; r_h : int }
type placed = { p_id : int; p_x : int; p_y : int; p_w : int; p_h : int }
type level = { l_y : int; l_h : int; l_slots : placed list }
type packing = { pk_width : int; pk_height : int; pk_levels : level list }
type order = Ffdh | Nfdh | Diagonal

let orders = [ Ffdh; Nfdh; Diagonal ]

let order_name = function
  | Ffdh -> "ffdh"
  | Nfdh -> "nfdh"
  | Diagonal -> "diagonal"

let check_input ~width rects =
  if width < 1 then invalid_arg "Level_pack: width must be >= 1";
  List.iter
    (fun r ->
      if r.r_w < 1 then invalid_arg "Level_pack: rectangle width must be >= 1";
      if r.r_w > width then
        invalid_arg "Level_pack: rectangle wider than the strip";
      if r.r_h < 0 then invalid_arg "Level_pack: rectangle height must be >= 0")
    rects

(* Every sort key is a chain of integer comparisons ending at [r_id],
   so rectangles with identical shapes still order totally and the
   packers stay deterministic on any input. *)
let cmp_height a b =
  let c = Int.compare b.r_h a.r_h in
  if c <> 0 then c
  else
    let c = Int.compare b.r_w a.r_w in
    if c <> 0 then c else Int.compare a.r_id b.r_id

let cmp_diagonal a b =
  let da = (a.r_w * a.r_w) + (a.r_h * a.r_h)
  and db = (b.r_w * b.r_w) + (b.r_h * b.r_h) in
  let c = Int.compare db da in
  if c <> 0 then c else cmp_height a b

let sorted order rects =
  match order with
  | Ffdh | Nfdh -> List.sort cmp_height rects
  | Diagonal -> List.sort cmp_diagonal rects

(* Shelf under construction: x grows left to right, the height is the
   tallest rectangle so far (under diagonal order a later rectangle may
   out-grow the shelf's first occupant). The y floors are only knowable
   once every shelf is closed, so slots store x and the floor is added
   in [finalize]. *)
type shelf = {
  mutable s_used : int;
  mutable s_h : int;
  mutable s_rev : (int * int * int * int) list;  (* id, x, w, h *)
}

let place shelf r =
  shelf.s_rev <- (r.r_id, shelf.s_used, r.r_w, r.r_h) :: shelf.s_rev;
  shelf.s_used <- shelf.s_used + r.r_w;
  if r.r_h > shelf.s_h then shelf.s_h <- r.r_h

let finalize width shelves =
  let y = ref 0 in
  let levels =
    List.map
      (fun s ->
        let floor = !y in
        y := !y + s.s_h;
        {
          l_y = floor;
          l_h = s.s_h;
          l_slots =
            List.rev_map
              (fun (id, x, w, h) ->
                { p_id = id; p_x = x; p_y = floor; p_w = w; p_h = h })
              s.s_rev;
        })
      shelves
  in
  { pk_width = width; pk_height = !y; pk_levels = levels }

let pack order ~width rects =
  check_input ~width rects;
  let shelves_rev = ref [] in
  let open_shelf r =
    let s = { s_used = 0; s_h = 0; s_rev = [] } in
    place s r;
    shelves_rev := s :: !shelves_rev
  in
  List.iter
    (fun r ->
      match order with
      | Nfdh -> (
          (* Next-fit: only the latest shelf is still open. *)
          match !shelves_rev with
          | s :: _ when s.s_used + r.r_w <= width -> place s r
          | _ -> open_shelf r)
      | Ffdh | Diagonal -> (
          (* First-fit: the lowest shelf with room wins. *)
          let rec fit = function
            | [] -> open_shelf r
            | s :: rest ->
                if s.s_used + r.r_w <= width then place s r else fit rest
          in
          fit (List.rev !shelves_rev)))
    (sorted order rects);
  finalize width (List.rev !shelves_rev)

let slots packing = List.concat_map (fun l -> l.l_slots) packing.pk_levels

let lower_bound ~width rects =
  check_input ~width rects;
  let area = List.fold_left (fun acc r -> acc + (r.r_w * r.r_h)) 0 rects in
  let tallest = List.fold_left (fun acc r -> max acc r.r_h) 0 rects in
  max (Soctam_util.Intutil.ceil_div area width) tallest
