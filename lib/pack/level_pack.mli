(** Level-oriented strip packing: the geometric core of the
    rectangle-packing co-optimization engine (arXiv 1008.3320 and the
    diagonal-length-ordering variant 1008.4446).

    A rectangle is a core tested at one wrapper width: [r_w] TAM wires
    for [r_h] clock cycles. Packing rectangles into a strip of width
    [W] so the occupied height is small is the packing recast of the
    paper's P_PAW: the strip width is the SOC's TAM width, the height
    is testing time.

    The packers here are {e level} algorithms: rectangles are placed
    left to right on shelves, and a shelf's height is the tallest
    rectangle on it. Level packings are not valid test-bus schedules
    by themselves — a test-bus architecture holds one lane structure
    for the whole session, while consecutive levels may disagree — so
    the engine ({!Pack_engine}) distills level geometry into lane
    partitions rather than reporting raw heights as SOC times. The raw
    packings keep their own sound invariants (no overlap, strip width
    respected, height never below {!lower_bound}), which the qcheck
    suite pins directly. *)

type rect = {
  r_id : int;  (** caller's identity, e.g. the 0-based core index *)
  r_w : int;  (** width in TAM wires, [>= 1] *)
  r_h : int;  (** height in clock cycles, [>= 0] *)
}

type placed = { p_id : int; p_x : int; p_y : int; p_w : int; p_h : int }
(** A rectangle at its packed position: it occupies
    [[p_x, p_x + p_w) x [p_y, p_y + p_h)]. *)

type level = {
  l_y : int;  (** bottom of the shelf *)
  l_h : int;  (** shelf height: the tallest rectangle on it *)
  l_slots : placed list;  (** left to right, in placement order *)
}

type packing = {
  pk_width : int;  (** the strip width the packing was built for *)
  pk_height : int;  (** total occupied height: sum of level heights *)
  pk_levels : level list;  (** bottom to top *)
}

(** Placement discipline x rectangle order. [Ffdh] and [Nfdh] sort by
    decreasing height (first-fit scans every open shelf, next-fit only
    the latest); [Diagonal] keeps first-fit placement but orders by
    decreasing squared diagonal [w^2 + h^2], the 1008.4446 heuristic
    that mixes tall and wide rectangles earlier. All tie-breaks are on
    integer keys ending at [r_id], so every order is total and the
    packers are deterministic. *)
type order = Ffdh | Nfdh | Diagonal

val orders : order list
(** [[Ffdh; Nfdh; Diagonal]], the engine's fixed heuristic portfolio. *)

val order_name : order -> string
(** ["ffdh"], ["nfdh"], ["diagonal"]. *)

val pack : order -> width:int -> rect list -> packing
(** Pack every rectangle into a strip of the given width. Total: every
    input rectangle appears in exactly one level, levels never exceed
    the strip width, and [pk_height] is the sum of level heights.
    @raise Invalid_argument when [width < 1] or some rectangle has
    [r_w < 1], [r_w > width] or [r_h < 0]. *)

val slots : packing -> placed list
(** All placed rectangles, bottom level first. *)

val lower_bound : width:int -> rect list -> int
(** The trivial strip-packing bound: [max(ceil(sum w*h / width),
    max h)]. No packing of the rectangles — level or not — can occupy
    less height. [0] for an empty list.
    @raise Invalid_argument like {!pack}. *)
