(** The rectangle-packing co-optimization engine.

    The ROADMAP's strip-packing recast of P_PAW/P_NPAW, made sound for
    this repo's test-bus model. The search space is a deterministic
    rank sequence of candidate generators:

    - the {e even-split ranks}: one per permitted TAM count, the
      trivial balanced partition (they seed the pruning bound and
      guarantee the engine never loses to the naive design);
    - the {e packing ranks}: one per (width cap, heuristic) pair —
      rectangles are drawn from the per-core Pareto fronts at every
      cap in [1 .. W] ({!Rect_build.rects}) and packed into the
      W-wide strip by each {!Level_pack.order};
    - the {e express ranks}: one per width [e] in [1 .. W - 1], the
      distillation of a degenerate two-column packing — a full-height
      express column of width [e] with the remaining wires split
      evenly — which reaches the one-bottleneck-core lane shapes the
      level packers rarely produce.

    A raw level packing is {e not} reported as a SOC time. Under the
    test-bus model a lane structure holds for the whole session, while
    consecutive levels of a packing may disagree — and a genuine
    two-dimensional packing can even beat the certified partition
    optimum (DESIGN.md §14 constructs a 3-core example where level
    packing reaches height 4 against a provable test-bus optimum
    of 5), so "pack height >= exhaustive optimum" would be a false
    invariant. Instead each level's lane widths are {e distilled} into
    a full-width partition (pad the unused wires round-robin, then
    merge the narrowest lanes down to the TAM-count limit — or adjust
    to exactly B for P_PAW) and evaluated with the paper's
    [Core_assign] under a shared pruning bound. The reported time is
    therefore always a genuine test-bus architecture time: certified
    by [lib/check] like any other engine's, and never below the
    exhaustive optimum — which is exactly what the differential suite
    pins. The raw packing heights survive as diagnostics
    ([best_makespan], and the packing schedules the qcheck geometry
    properties certify).

    The engine runs behind the same [Run_config]/[Outcome] lifecycle
    as every other solver: budget-aware slices over the rank sequence,
    checkpoint/resume (solver tag ["pack"]), [-j] parallel rank
    evaluation with the jobs-independent (time, rank) reduction, and
    [?stats] counters ([pack/packings], [pack/candidates],
    [pack/evaluated], [pack/pruned]) via [lib/obs]. *)

type result = {
  widths : int array;  (** chosen partition, sorted widest first *)
  time : int;  (** SOC testing time of the chosen architecture *)
  assignment : int array;  (** core index -> TAM index *)
  ranks : int;  (** rank-space size of this instance *)
  packings : int;  (** level packings constructed *)
  candidates : int;  (** distilled partitions handed to [Core_assign] *)
  completed : int;  (** candidates evaluated to completion *)
  pruned : int;  (** candidates cut by the tau early exit *)
  best_makespan : int option;
      (** smallest raw level-packing height over all packing ranks:
          the geometric signal before distillation. May be below
          {!time} (see the module preamble); never below the trivial
          packing lower bound. *)
  outcome : Soctam_core.Outcome.t;
}

val run_with :
  Soctam_core.Run_config.t ->
  table:Soctam_core.Time_table.t ->
  total_width:int ->
  result
(** Run the engine. [Run_config.tams] fixes the TAM count (P_PAW);
    otherwise TAM counts up to [max_tams] are permitted (P_NPAW).
    Respects [jobs], [stats], [initial_best], [time_budget],
    [checkpoint_path]/[checkpoint_every], [resume] and [cancel]; the
    reported architecture is byte-identical at every job count, and a
    run resumed from any slice boundary agrees with an uninterrupted
    one. [carry_tau] is irrelevant here (the rank sequence is a
    single pass, so the bound always carries).

    [tau_import] caps every candidate's pruning threshold at the
    imported bound — at any job count — so candidates at or above it
    are cut and foreign times never enter the (time, rank) reduction;
    when nothing beats the import the result falls back to the even
    split (whose time then fails the racer's strict-improvement
    check). [slice_limit] stops the run resumably
    ([Outcome.Budget_exhausted]) after that many rank slices.
    @raise Invalid_argument when [total_width < 1], the table is
    narrower than [total_width], [tams] exceeds [total_width], or a
    resume checkpoint does not match this instance. *)

val architecture :
  table:Soctam_core.Time_table.t -> result -> Soctam_tam.Architecture.t
(** The chosen architecture as a full [Soctam_tam.Architecture.t],
    with core and TAM times re-derived from the table. *)

val schedule : table:Soctam_core.Time_table.t -> result -> Pack_schedule.t
(** The chosen architecture rendered as a rectangle schedule
    ({!Pack_schedule.of_architecture}) for the packing certifier. *)

val engine : Soctam_core.Engine.t
(** This solver as a first-class engine (registry name ["pack"]):
    parallel, imports tau, handles both P_PAW and P_NPAW, proves
    nothing; admits both the exact and the packing certificates. *)
