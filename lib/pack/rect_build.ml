module Tt = Soctam_core.Time_table

let rects table ~cap =
  if cap < 1 then invalid_arg "Rect_build.rects: cap must be >= 1";
  if Tt.max_width table < cap then
    invalid_arg "Rect_build.rects: time table narrower than the cap";
  let rows = Tt.rows table in
  List.init (Tt.core_count table) (fun i ->
      let row = rows.(i) in
      let h = row.(cap - 1) in
      (* The row is monotone non-increasing, so the first width whose
         time equals [h] is the Pareto step: the narrowest rectangle of
         this height. *)
      let w = ref 1 in
      while row.(!w - 1) <> h do
        incr w
      done;
      { Level_pack.r_id = i; r_w = !w; r_h = h })
