module Soc = Soctam_model.Soc
module Core_data = Soctam_model.Core_data
module V = Violation

(* -- semantic lint of a parsed SOC ---------------------------------------- *)

(* The number embedded in names like "d695" / "p93791"; None when the
   name does not end in digits. *)
let name_number name =
  let n = String.length name in
  let rec digits_from i =
    if i < n && name.[i] >= '0' && name.[i] <= '9' then digits_from (i + 1)
    else i
  in
  let rec first_digit i =
    if i >= n then None
    else if name.[i] >= '0' && name.[i] <= '9' then
      if digits_from i = n then int_of_string_opt (String.sub name i (n - i))
      else None
    else first_digit (i + 1)
  in
  first_digit 0

let lint_soc soc =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  Array.iteri
    (fun i (c : Core_data.t) ->
      if Core_data.terminals c = 0 && Core_data.scan_chain_count c = 0 then
        add
          (V.warningf V.Degenerate_core (V.Core (i + 1))
             "core %s has no terminals and no scan chains: nothing to test"
             c.Core_data.name))
    (Soc.cores soc);
  (match name_number soc.Soc.name with
  | Some number when number >= 100 ->
      let complexity = Soc.test_complexity soc in
      let tolerance = max 1 (number / 4) in
      if abs (complexity - number) > tolerance then
        add
          (V.warningf V.Name_complexity_mismatch V.Soc
             "SOC is named %s but its test-complexity number is %d (expected \
              within 25%% of %d): wrong or truncated test data?"
             soc.Soc.name complexity number)
  | Some _ | None -> ());
  List.rev !violations

(* -- lenient file scanning ------------------------------------------------- *)

type scan_state = {
  mutable diags : V.t list;
  mutable core_lines : (int * int) list;  (** (core id, line) in file order *)
  mutable cores_seen : int;
}

let add_diag st v = st.diags <- v :: st.diags

let strip_comment raw =
  match String.index_opt raw '#' with
  | Some j -> String.sub raw 0 j
  | None -> raw

let words_of raw =
  String.split_on_char ' ' (String.trim (strip_comment raw))
  |> List.filter (fun w -> w <> "")

let lines_of text =
  String.split_on_char '\n' text |> List.mapi (fun i raw -> (i + 1, words_of raw))

let int_field st line what s =
  match int_of_string_opt s with
  | Some v -> Some v
  | None ->
      add_diag st
        (V.errorf V.Syntax_error (V.Line line) "%s: %S is not an integer" what s);
      None

(* Shared post-pass: duplicate and (for the flat dialect, whose strict
   reader requires 1..n in order) non-consecutive core ids. The ITC'02
   reader renumbers modules, so there only distinctness matters. *)
let check_ids ~require_consecutive st =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (id, line) ->
      match Hashtbl.find_opt seen id with
      | Some first ->
          add_diag st
            (V.errorf V.Duplicate_core_id (V.Line line)
               "core id %d already used on line %d" id first)
      | None -> Hashtbl.add seen id line)
    st.core_lines;
  let ids = List.map fst st.core_lines in
  let expected = List.mapi (fun i _ -> i + 1) ids in
  if
    require_consecutive && ids <> expected
    && List.sort_uniq compare ids = List.sort compare ids
  then
    add_diag st
      (V.warningf V.Nonconsecutive_core_ids V.Soc
         "core ids are not the consecutive sequence 1..%d in order; the \
          strict reader will reject this file"
         (List.length ids))

(* One-line [.soc] dialect. *)
let scan_flat st lines =
  let soc_line = ref None in
  List.iter
    (fun (line, words) ->
      match words with
      | [] -> ()
      | "soc" :: rest -> (
          (match !soc_line with
          | Some first ->
              add_diag st
                (V.errorf V.Syntax_error (V.Line line)
                   "duplicate soc line (first on line %d)" first)
          | None -> soc_line := Some line);
          match rest with
          | [ _ ] -> ()
          | _ ->
              add_diag st
                (V.errorf V.Syntax_error (V.Line line)
                   "soc line needs exactly one name"))
      | "core" :: id :: _ :: fields ->
          st.cores_seen <- st.cores_seen + 1;
          (match int_field st line "core id" id with
          | Some id -> st.core_lines <- st.core_lines @ [ (id, line) ]
          | None -> ());
          let patterns = ref None and inputs = ref None and outputs = ref None in
          let scan_lengths = ref [] in
          List.iter
            (fun field ->
              match String.index_opt field '=' with
              | None ->
                  add_diag st
                    (V.errorf V.Syntax_error (V.Line line)
                       "malformed field %S (expected key=value)" field)
              | Some i -> (
                  let key = String.sub field 0 i in
                  let value =
                    String.sub field (i + 1) (String.length field - i - 1)
                  in
                  match key with
                  | "inputs" -> inputs := int_field st line key value
                  | "outputs" -> outputs := int_field st line key value
                  | "bidirs" -> ignore (int_field st line key value)
                  | "patterns" -> patterns := int_field st line key value
                  | "scan" ->
                      scan_lengths :=
                        String.split_on_char ',' value
                        |> List.filter_map (int_field st line "scan length")
                  | _ ->
                      add_diag st
                        (V.errorf V.Syntax_error (V.Line line)
                           "unknown field %S" key)))
            fields;
          List.iter
            (fun (what, v) ->
              match v with
              | Some n when n < 0 ->
                  add_diag st
                    (V.errorf V.Syntax_error (V.Line line)
                       "%s must not be negative (got %d)" what n)
              | Some _ -> ()
              | None ->
                  add_diag st
                    (V.errorf V.Syntax_error (V.Line line) "missing field %s"
                       what))
            [ ("inputs", !inputs); ("outputs", !outputs) ];
          (match !patterns with
          | Some p when p < 1 ->
              add_diag st
                (V.errorf V.Zero_patterns (V.Line line)
                   "core declares %d test patterns; at least one is required"
                   p)
          | Some _ -> ()
          | None ->
              add_diag st
                (V.errorf V.Zero_patterns (V.Line line)
                   "core has no patterns field"));
          List.iter
            (fun len ->
              if len < 1 then
                add_diag st
                  (V.errorf V.Scan_chain_mismatch (V.Line line)
                     "scan chain of length %d (must be >= 1)" len))
            !scan_lengths
      | "core" :: _ ->
          st.cores_seen <- st.cores_seen + 1;
          add_diag st
            (V.errorf V.Syntax_error (V.Line line)
               "core line needs at least an id and a name")
      | word :: _ ->
          add_diag st
            (V.errorf V.Syntax_error (V.Line line) "unknown directive %S" word))
    lines;
  if !soc_line = None then
    add_diag st (V.errorf V.Syntax_error V.Soc "missing soc line")

(* ITC'02-style hierarchical dialect. *)
let scan_itc02 st lines =
  let declared_modules = ref None in
  let in_module = ref false in
  let module_line = ref 0 in
  let module_has_patterns = ref false in
  let soc_name_seen = ref false in
  let end_module line =
    if !in_module && not !module_has_patterns then
      add_diag st
        (V.warningf V.Zero_patterns (V.Line !module_line)
           "module has no TestPatterns line; the reader defaults it to 1 \
            pattern");
    ignore line;
    in_module := false
  in
  let require_module line what =
    if not !in_module then
      add_diag st
        (V.errorf V.Syntax_error (V.Line line) "%s outside a Module block" what)
  in
  List.iter
    (fun (line, words) ->
      match words with
      | [] -> ()
      | [ "SocName"; _ ] -> soc_name_seen := true
      | [ "TotalModules"; n ] ->
          declared_modules := int_field st line "TotalModules" n
      | "Module" :: id :: _ ->
          if !in_module then end_module line;
          in_module := true;
          module_line := line;
          module_has_patterns := false;
          st.cores_seen <- st.cores_seen + 1;
          (match int_field st line "Module id" id with
          | Some id -> st.core_lines <- st.core_lines @ [ (id, line) ]
          | None -> ())
      | [ "EndModule" ] ->
          if not !in_module then
            add_diag st
              (V.errorf V.Syntax_error (V.Line line) "EndModule without Module")
          else end_module line
      | "ScanChains" :: count :: rest -> (
          require_module line "ScanChains";
          match int_field st line "ScanChains" count with
          | None -> ()
          | Some count ->
              let lengths =
                match rest with
                | ":" :: lengths ->
                    List.filter_map (int_field st line "chain length") lengths
                | [] -> []
                | _ ->
                    add_diag st
                      (V.errorf V.Scan_chain_mismatch (V.Line line)
                         "expected ': lengths...' after ScanChains");
                    []
              in
              List.iter
                (fun len ->
                  if len < 1 then
                    add_diag st
                      (V.errorf V.Scan_chain_mismatch (V.Line line)
                         "scan chain of length %d (must be >= 1)" len))
                lengths;
              if count = 0 && lengths <> [] then
                add_diag st
                  (V.errorf V.Scan_chain_mismatch (V.Line line)
                     "ScanChains 0 cannot list lengths")
              else if count <> 0 && List.length lengths <> count then
                add_diag st
                  (V.errorf V.Scan_chain_mismatch (V.Line line)
                     "ScanChains declares %d chains but %d lengths are listed"
                     count (List.length lengths)))
      | [ "TestPatterns"; v ] -> (
          require_module line "TestPatterns";
          module_has_patterns := true;
          match int_field st line "TestPatterns" v with
          | Some p when p < 1 ->
              add_diag st
                (V.errorf V.Zero_patterns (V.Line line)
                   "module declares %d test patterns" p)
          | Some _ | None -> ())
      | [ ("Inputs" | "Outputs" | "Bidirs") as what; v ] ->
          require_module line what;
          (match int_field st line what v with
          | Some n when n < 0 ->
              add_diag st
                (V.errorf V.Syntax_error (V.Line line)
                   "%s must not be negative (got %d)" what n)
          | Some _ | None -> ())
      | [ ("Level" | "TotalTests" | "Test") as what; _ ] | [ ("EndTest" as what) ]
        ->
          require_module line what
      | word :: _ ->
          add_diag st
            (V.errorf V.Syntax_error (V.Line line) "unknown directive %S" word))
    lines;
  if !in_module then end_module 0;
  if not !soc_name_seen then
    add_diag st (V.errorf V.Syntax_error V.Soc "missing SocName line");
  match !declared_modules with
  | Some n when n <> st.cores_seen ->
      add_diag st
        (V.errorf V.Module_count_mismatch V.Soc
           "TotalModules says %d but %d Module blocks found" n st.cores_seen)
  | Some _ | None -> ()

let detect_dialect lines =
  let rec first = function
    | [] -> `Flat
    | (_, []) :: rest -> first rest
    | (_, word :: _) :: _ -> (
        match word with
        | "soc" | "core" -> `Flat
        | "SocName" | "TotalModules" | "Module" -> `Itc02
        | _ -> `Flat)
  in
  first lines

let lint_string text =
  let st = { diags = []; core_lines = []; cores_seen = 0 } in
  let lines = lines_of text in
  let dialect = detect_dialect lines in
  (match dialect with
  | `Flat -> scan_flat st lines
  | `Itc02 -> scan_itc02 st lines);
  if st.cores_seen = 0 then
    add_diag st (V.errorf V.No_test_data V.Soc "the file describes no core");
  check_ids ~require_consecutive:(dialect = `Flat) st;
  let parsed =
    match dialect with
    | `Flat -> Soctam_soc_data.Soc_format.of_string text
    | `Itc02 -> Soctam_soc_data.Itc02_format.of_string text
  in
  let soc =
    match parsed with
    | Ok soc ->
        List.iter (add_diag st) (lint_soc soc);
        Some soc
    | Error msg ->
        (* The lenient scan should have explained the problem already; if
           it did not, surface the strict reader's complaint. *)
        if
          not
            (List.exists
               (fun (v : V.t) -> v.V.severity = V.Error)
               st.diags)
        then
          add_diag st
            (V.errorf V.Syntax_error V.Soc "strict reader rejects the file: %s"
               msg);
        None
  in
  (List.rev st.diags, soc)

let lint_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Ok (lint_string (really_input_string ic (in_channel_length ic))))
  with Sys_error msg -> Error msg
