type t = { subject : string; violations : Violation.t list }

let make ~subject violations =
  {
    subject;
    violations =
      List.stable_sort
        (fun (a : Violation.t) (b : Violation.t) ->
          Violation.compare_severity a.Violation.severity b.Violation.severity)
        violations;
  }

let with_severity severity t =
  List.filter (fun (v : Violation.t) -> v.Violation.severity = severity) t.violations

let errors t = with_severity Violation.Error t
let warnings t = with_severity Violation.Warning t
let infos t = with_severity Violation.Info t
let ok t = errors t = []
let clean t = t.violations = []

let has_kind t kind =
  List.exists (fun (v : Violation.t) -> v.Violation.kind = kind) t.violations

let kinds t =
  List.fold_left
    (fun acc (v : Violation.t) ->
      if List.mem v.Violation.kind acc then acc else v.Violation.kind :: acc)
    [] t.violations
  |> List.rev

let merge ~subject reports =
  make ~subject (List.concat_map (fun t -> t.violations) reports)

let pp ppf t =
  if clean t then Format.fprintf ppf "OK: %s" t.subject
  else if ok t then
    Format.fprintf ppf "@[<v>OK: %s (%d warning(s))@,%a@]" t.subject
      (List.length (warnings t) + List.length (infos t))
      (Format.pp_print_list Violation.pp)
      t.violations
  else
    Format.fprintf ppf "@[<v>FAIL: %s (%d error(s))@,%a@]" t.subject
      (List.length (errors t))
      (Format.pp_print_list Violation.pp)
      t.violations
