(** Independent certifier for test access architectures.

    The certifier re-derives every number in an optimizer result from
    first principles — wrapper designs via {!Soctam_wrapper.Design} for
    the per-core times, plain sums and maxima for the TAM and SOC times,
    {!Soctam_core.Bounds} for admissibility, optionally an exact
    {!Soctam_ilp.Exact} solve and the {!Soctam_core.Exhaustive} baseline
    as ground truth, and the cycle-level {!Soctam_sim.Soc_sim} — without
    trusting any intermediate value of the optimizer under scrutiny. It
    never raises on malformed input; every broken invariant becomes a
    {!Violation.t}. *)

type claim = {
  total_width : int option;
      (** the total TAM width W the optimizer was asked for, when known *)
  widths : int array;  (** claimed TAM width partition *)
  assignment : int array;  (** claimed core (0-based) -> TAM (0-based) *)
  core_times : int array option;  (** claimed per-core times, if reported *)
  tam_times : int array option;  (** claimed per-TAM times, if reported *)
  time : int;  (** claimed SOC testing time *)
}
(** What an optimizer asserts about its result. Optional fields are only
    checked when present, so results that report just a partition,
    assignment and makespan (e.g. {!Soctam_anneal.Annealer}) certify with
    the same code path as full {!Soctam_tam.Architecture.t} values. *)

val claim_of_architecture :
  ?total_width:int -> Soctam_tam.Architecture.t -> claim

val certify_claim :
  ?table:Soctam_core.Time_table.t ->
  ?check_bounds:bool ->
  ?check_exact:bool ->
  ?check_exhaustive:bool ->
  ?check_simulation:bool ->
  soc:Soctam_model.Soc.t ->
  claim ->
  Violation.t list
(** Structural checks (non-empty positive partition summing to W, total
    in-range assignment) always run. When the structure is sound the
    per-core, per-TAM and SOC times are recomputed exactly. Optional
    passes:
    - [check_bounds] (default [true]): the claimed time must not beat the
      combined {!Soctam_core.Bounds} lower bound;
    - [check_exact] (default [false]): exact P_AW solve on the claimed
      partition; the claimed time must not beat the proven optimum;
    - [check_exhaustive] (default [false]): full exhaustive baseline over
      every partition with the same TAM count — intended for small SOCs
      only (cost grows with the partition count);
    - [check_simulation] (default [false]): cycle-level simulation must
      reproduce the recomputed SOC time.

    [table] reuses a precomputed time table; it is ignored (and rebuilt)
    when it does not cover the required width. *)

val certify :
  ?table:Soctam_core.Time_table.t ->
  ?check_bounds:bool ->
  ?check_exact:bool ->
  ?check_exhaustive:bool ->
  ?check_simulation:bool ->
  ?total_width:int ->
  soc:Soctam_model.Soc.t ->
  Soctam_tam.Architecture.t ->
  Violation.t list
(** {!certify_claim} over {!claim_of_architecture}. *)
