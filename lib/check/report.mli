(** A structured diagnostic report: the outcome of one certifier or lint
    pass over one artifact.

    A report is [ok] when it contains no [Error]-severity violation; it
    may still carry warnings and infos. Render with {!pp} for humans or
    with [Soctam_report.Check_json] for machines. *)

type t = private {
  subject : string;  (** what was analyzed, e.g. ["d695 architecture"] *)
  violations : Violation.t list;  (** sorted by severity, then input order *)
}

val make : subject:string -> Violation.t list -> t
(** Sorts the violations by severity (stable). *)

val ok : t -> bool
(** No [Error]-severity violations. *)

val clean : t -> bool
(** No violations at all. *)

val errors : t -> Violation.t list
val warnings : t -> Violation.t list
val infos : t -> Violation.t list

val has_kind : t -> Violation.kind -> bool

val kinds : t -> Violation.kind list
(** Distinct kinds present, in report order. *)

val merge : subject:string -> t list -> t
(** Concatenate the violations of several reports under one subject. *)

val pp : Format.formatter -> t -> unit
(** ["OK: subject"] / ["OK: subject (n warnings)"] on success, otherwise
    the subject followed by one line per violation. *)
