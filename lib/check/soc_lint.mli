(** Diagnostics pass over SOC description files and parsed SOCs.

    The strict readers ({!Soctam_soc_data.Soc_format},
    {!Soctam_soc_data.Itc02_format}) stop at the first problem; the
    linter instead scans the whole file leniently and reports {e every}
    finding — duplicate core ids, zero-pattern cores, scan-chain count /
    length-list inconsistencies, module-count mismatches, unknown
    directives — then runs the semantic checks of {!lint_soc} when the
    file still parses. *)

val lint_soc : Soctam_model.Soc.t -> Violation.t list
(** Semantic lint of an already-parsed SOC: untestable (degenerate)
    cores, and a test-complexity number far from the one embedded in the
    SOC's name (a d695 whose data does not add up to ~695 is suspect). *)

val lint_string : string -> Violation.t list * Soctam_model.Soc.t option
(** Lint a file's contents. The dialect (one-line [.soc] or ITC'02-style
    hierarchical) is auto-detected from the first directive. Returns all
    diagnostics plus the parsed SOC when the strict reader still accepts
    the file (so callers can chain further analyses). *)

val lint_file :
  string -> (Violation.t list * Soctam_model.Soc.t option, string) result
(** [Error] only for I/O failures; parse problems are violations. *)
