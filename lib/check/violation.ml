type severity = Error | Warning | Info

type location =
  | Soc
  | Core of int
  | Tam of int
  | Line of int
  | File of string * int

type kind =
  | Empty_partition
  | Nonpositive_width
  | Width_sum_mismatch
  | Assignment_length_mismatch
  | Assignment_out_of_range
  | Core_time_mismatch
  | Tam_time_mismatch
  | Soc_time_mismatch
  | Lower_bound_violated
  | Beats_exhaustive_optimum
  | Simulation_mismatch
  | Pipeline_inconsistent
  | Soc_name_mismatch
  | Schedule_core_missing
  | Schedule_core_duplicated
  | Schedule_wrong_tam
  | Schedule_duration_mismatch
  | Schedule_overlap
  | Schedule_negative_start
  | Rect_out_of_strip
  | Makespan_mismatch
  | Peak_power_mismatch
  | Power_budget_exceeded
  | Syntax_error
  | Duplicate_core_id
  | Nonconsecutive_core_ids
  | Zero_patterns
  | No_test_data
  | Scan_chain_mismatch
  | Module_count_mismatch
  | Name_complexity_mismatch
  | Degenerate_core
  | Polymorphic_comparison
  | Entropy_source
  | Unguarded_shared_state
  | Domain_escape
  | Lock_discipline
  | Hot_allocation
  | Deprecated_api
  | Missing_interface
  | Worker_effect
  | Outcome_dropped
  | Engine_caps_mismatch
  | Tau_discipline
  | Analysis_error

type t = {
  severity : severity;
  kind : kind;
  location : location;
  message : string;
}

let make severity kind location message = { severity; kind; location; message }

let with_severity severity kind location fmt =
  Format.kasprintf (fun message -> make severity kind location message) fmt

let errorf kind location fmt = with_severity Error kind location fmt
let warningf kind location fmt = with_severity Warning kind location fmt
let infof kind location fmt = with_severity Info kind location fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let kind_name = function
  | Empty_partition -> "empty-partition"
  | Nonpositive_width -> "nonpositive-width"
  | Width_sum_mismatch -> "width-sum-mismatch"
  | Assignment_length_mismatch -> "assignment-length-mismatch"
  | Assignment_out_of_range -> "assignment-out-of-range"
  | Core_time_mismatch -> "core-time-mismatch"
  | Tam_time_mismatch -> "tam-time-mismatch"
  | Soc_time_mismatch -> "soc-time-mismatch"
  | Lower_bound_violated -> "lower-bound-violated"
  | Beats_exhaustive_optimum -> "beats-exhaustive-optimum"
  | Simulation_mismatch -> "simulation-mismatch"
  | Pipeline_inconsistent -> "pipeline-inconsistent"
  | Soc_name_mismatch -> "soc-name-mismatch"
  | Schedule_core_missing -> "schedule-core-missing"
  | Schedule_core_duplicated -> "schedule-core-duplicated"
  | Schedule_wrong_tam -> "schedule-wrong-tam"
  | Schedule_duration_mismatch -> "schedule-duration-mismatch"
  | Schedule_overlap -> "schedule-overlap"
  | Schedule_negative_start -> "schedule-negative-start"
  | Rect_out_of_strip -> "rect-out-of-strip"
  | Makespan_mismatch -> "makespan-mismatch"
  | Peak_power_mismatch -> "peak-power-mismatch"
  | Power_budget_exceeded -> "power-budget-exceeded"
  | Syntax_error -> "syntax-error"
  | Duplicate_core_id -> "duplicate-core-id"
  | Nonconsecutive_core_ids -> "nonconsecutive-core-ids"
  | Zero_patterns -> "zero-patterns"
  | No_test_data -> "no-test-data"
  | Scan_chain_mismatch -> "scan-chain-mismatch"
  | Module_count_mismatch -> "module-count-mismatch"
  | Name_complexity_mismatch -> "name-complexity-mismatch"
  | Degenerate_core -> "degenerate-core"
  | Polymorphic_comparison -> "polymorphic-comparison"
  | Entropy_source -> "entropy-source"
  | Unguarded_shared_state -> "unguarded-shared-state"
  | Domain_escape -> "domain-escape"
  | Lock_discipline -> "lock-discipline"
  | Hot_allocation -> "hot-allocation"
  | Deprecated_api -> "deprecated-api"
  | Missing_interface -> "missing-interface"
  | Worker_effect -> "worker-effect"
  | Outcome_dropped -> "outcome-dropped"
  | Engine_caps_mismatch -> "engine-caps-mismatch"
  | Tau_discipline -> "tau-discipline"
  | Analysis_error -> "analysis-error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let pp_location ppf = function
  | Soc -> Format.pp_print_string ppf "SOC"
  | Core i -> Format.fprintf ppf "core %d" i
  | Tam j -> Format.fprintf ppf "TAM %d" j
  | Line l -> Format.fprintf ppf "line %d" l
  | File (path, l) -> Format.fprintf ppf "%s:%d" path l

let pp ppf t =
  Format.fprintf ppf "%s[%s] at %a: %s" (severity_name t.severity)
    (kind_name t.kind) pp_location t.location t.message
