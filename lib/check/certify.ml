module Soc = Soctam_model.Soc
module Co = Soctam_core.Co_optimize
module Arch = Soctam_tam.Architecture
module V = Violation

let arch_subject soc = Printf.sprintf "%s architecture" soc.Soc.name

let architecture ?table ?check_bounds ?check_exact ?check_exhaustive
    ?check_simulation ?total_width ~soc arch =
  Report.make ~subject:(arch_subject soc)
    (Arch_check.certify ?table ?check_bounds ?check_exact ?check_exhaustive
       ?check_simulation ?total_width ~soc arch)

let claim ?table ?check_bounds ?check_exact ?check_exhaustive ?check_simulation
    ?subject ~soc c =
  let subject = Option.value subject ~default:(arch_subject soc) in
  Report.make ~subject
    (Arch_check.certify_claim ?table ?check_bounds ?check_exact
       ?check_exhaustive ?check_simulation ~soc c)

let co_optimize ?table ?check_exact ?check_simulation ~soc ~total_width
    (result : Co.t) =
  let arch = result.Co.architecture in
  let violations =
    Arch_check.certify ?table ?check_exact ?check_simulation ~total_width ~soc
      arch
  in
  let pipeline = ref [] in
  if result.Co.final_time <> arch.Arch.time then
    pipeline :=
      V.errorf V.Pipeline_inconsistent V.Soc
        "final_time %d differs from the architecture's time %d"
        result.Co.final_time arch.Arch.time
      :: !pipeline;
  if result.Co.final_time > result.Co.heuristic_time then
    pipeline :=
      V.errorf V.Pipeline_inconsistent V.Soc
        "final exact step worsened the heuristic result (%d -> %d): it must \
         only ever improve the chosen partition"
        result.Co.heuristic_time result.Co.final_time
      :: !pipeline;
  Report.make
    ~subject:(Printf.sprintf "%s co-optimization (W = %d)" soc.Soc.name total_width)
    (violations @ List.rev !pipeline)

let parsed_architecture ?table ?check_exact ?check_exhaustive ?check_simulation
    ?total_width ~soc (parsed : Soctam_tam.Arch_format.parsed) =
  let name_check =
    match parsed.Soctam_tam.Arch_format.soc_name with
    | Some name when name <> soc.Soc.name ->
        [
          V.warningf V.Soc_name_mismatch V.Soc
            "architecture was saved for SOC %s but is being checked against %s"
            name soc.Soc.name;
        ]
    | Some _ | None -> []
  in
  let widths = parsed.Soctam_tam.Arch_format.widths in
  let assignment = parsed.Soctam_tam.Arch_format.assignment in
  let subject = Printf.sprintf "%s vs %s" (arch_subject soc) "architecture file" in
  match Arch.make ~soc ~widths ~assignment with
  | exception Invalid_argument _ ->
      (* Structurally broken: certify_claim reports every violated
         invariant (the claimed time is irrelevant, it is never reached). *)
      let c =
        {
          Arch_check.total_width;
          widths;
          assignment;
          core_times = None;
          tam_times = None;
          time = 0;
        }
      in
      ( Report.make ~subject
          (name_check @ Arch_check.certify_claim ~check_bounds:false ~soc c),
        None )
  | arch ->
      let violations =
        Arch_check.certify ?table ?check_exact ?check_exhaustive
          ?check_simulation ?total_width ~soc arch
      in
      (Report.make ~subject (name_check @ violations), Some arch)

let schedule ?budget ~soc ~arch ~power sched =
  let arch_violations = Arch_check.certify ~soc arch in
  let sched_violations = Schedule_check.certify ?budget ~arch ~power sched in
  Report.make
    ~subject:(Printf.sprintf "%s test schedule" soc.Soc.name)
    (arch_violations @ sched_violations)

let packing ?table ?expected_makespan ?subject ~total_width sched =
  let subject =
    match subject with
    | Some s -> s
    | None -> Printf.sprintf "rectangle schedule (W = %d)" total_width
  in
  Report.make ~subject
    (Schedule_check.certify_packing ?table ?expected_makespan ~total_width
       sched)

let soc s =
  Report.make ~subject:(Printf.sprintf "SOC %s" s.Soc.name) (Soc_lint.lint_soc s)

let soc_string ?(subject = "SOC description") text =
  let violations, parsed = Soc_lint.lint_string text in
  (Report.make ~subject violations, parsed)

let soc_file path =
  match Soc_lint.lint_file path with
  | Error _ as e -> e
  | Ok (violations, parsed) ->
      Ok (Report.make ~subject:path violations, parsed)
