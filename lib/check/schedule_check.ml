module Arch = Soctam_tam.Architecture
module Pm = Soctam_power.Power_model
module Ps = Soctam_power.Power_schedule
module V = Violation

(* Highest instantaneous power of the slot set, recomputed by sweeping
   the start/finish events. A slot occupies [start, finish). *)
let recompute_peak power slots =
  let events =
    List.concat_map
      (fun (s : Ps.slot) ->
        let p = Pm.power power s.Ps.core in
        [ (s.Ps.start, p); (s.Ps.finish, -p) ])
      slots
  in
  let events =
    (* Releases before acquisitions at the same instant: [start, finish). *)
    List.sort
      (fun (t1, d1) (t2, d2) -> if t1 <> t2 then compare t1 t2 else compare d1 d2)
      events
  in
  let peak = ref 0 and current = ref 0 in
  List.iter
    (fun (_, d) ->
      current := !current + d;
      if !current > !peak then peak := !current)
    events;
  !peak

let certify ?budget ~arch ~power (sched : Ps.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let cores = Array.length arch.Arch.assignment in
  let seen = Array.make cores 0 in
  List.iter
    (fun (s : Ps.slot) ->
      if s.Ps.core < 0 || s.Ps.core >= cores then
        add
          (V.errorf V.Schedule_core_missing V.Soc
             "slot refers to core %d outside 1..%d" (s.Ps.core + 1) cores)
      else begin
        seen.(s.Ps.core) <- seen.(s.Ps.core) + 1;
        if s.Ps.start < 0 then
          add
            (V.errorf V.Schedule_negative_start (V.Core (s.Ps.core + 1))
               "test starts at cycle %d" s.Ps.start);
        if s.Ps.tam <> arch.Arch.assignment.(s.Ps.core) then
          add
            (V.errorf V.Schedule_wrong_tam (V.Core (s.Ps.core + 1))
               "scheduled on TAM %d but the architecture assigns TAM %d"
               (s.Ps.tam + 1)
               (arch.Arch.assignment.(s.Ps.core) + 1));
        let duration = s.Ps.finish - s.Ps.start in
        if duration <> arch.Arch.core_times.(s.Ps.core) then
          add
            (V.errorf V.Schedule_duration_mismatch (V.Core (s.Ps.core + 1))
               "slot lasts %d cycles but the core needs %d at its TAM width"
               duration
               arch.Arch.core_times.(s.Ps.core))
      end)
    sched.Ps.slots;
  Array.iteri
    (fun i n ->
      if n = 0 then
        add
          (V.errorf V.Schedule_core_missing (V.Core (i + 1))
             "core is never tested")
      else if n > 1 then
        add
          (V.errorf V.Schedule_core_duplicated (V.Core (i + 1))
             "core is tested %d times" n))
    seen;
  (* Non-overlap per TAM: sort each TAM's slots by start and compare
     neighbours. *)
  let tams = Array.length arch.Arch.widths in
  for j = 0 to tams - 1 do
    let mine =
      List.filter (fun (s : Ps.slot) -> s.Ps.tam = j) sched.Ps.slots
      |> List.sort (fun (a : Ps.slot) (b : Ps.slot) ->
             compare a.Ps.start b.Ps.start)
    in
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if b.Ps.start < a.Ps.finish then
            add
              (V.errorf V.Schedule_overlap (V.Tam (j + 1))
                 "cores %d and %d overlap: [%d, %d) and [%d, %d)"
                 (a.Ps.core + 1) (b.Ps.core + 1) a.Ps.start a.Ps.finish
                 b.Ps.start b.Ps.finish);
          scan rest
      | _ -> ()
    in
    scan mine
  done;
  let finish_max =
    List.fold_left (fun acc (s : Ps.slot) -> max acc s.Ps.finish) 0 sched.Ps.slots
  in
  if sched.Ps.makespan <> finish_max then
    add
      (V.errorf V.Makespan_mismatch V.Soc
         "reported makespan %d but the last test finishes at %d"
         sched.Ps.makespan finish_max);
  (match sched.Ps.budget with
  | None ->
      if sched.Ps.makespan <> arch.Arch.time then
        add
          (V.errorf V.Makespan_mismatch V.Soc
             "unconstrained makespan %d differs from the architecture's \
              testing time %d"
             sched.Ps.makespan arch.Arch.time)
  | Some _ -> ());
  let peak = recompute_peak power sched.Ps.slots in
  if peak <> sched.Ps.peak_power then
    add
      (V.errorf V.Peak_power_mismatch V.Soc
         "reported peak power %d, recomputed %d" sched.Ps.peak_power peak);
  (match (budget, sched.Ps.budget) with
  | Some cap, _ | None, Some cap ->
      if peak > cap then
        add
          (V.errorf V.Power_budget_exceeded V.Soc
             "instantaneous power reaches %d, over the budget of %d" peak cap)
  | None, None -> ());
  List.rev !violations
