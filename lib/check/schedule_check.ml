module Arch = Soctam_tam.Architecture
module Pm = Soctam_power.Power_model
module Ps = Soctam_power.Power_schedule
module Pk = Soctam_pack.Pack_schedule
module Tt = Soctam_core.Time_table
module V = Violation

(* Highest instantaneous power of the slot set, recomputed by sweeping
   the start/finish events. A slot occupies [start, finish). *)
let recompute_peak power slots =
  let events =
    List.concat_map
      (fun (s : Ps.slot) ->
        let p = Pm.power power s.Ps.core in
        [ (s.Ps.start, p); (s.Ps.finish, -p) ])
      slots
  in
  let events =
    (* Releases before acquisitions at the same instant: [start, finish). *)
    List.sort
      (fun (t1, d1) (t2, d2) -> if t1 <> t2 then compare t1 t2 else compare d1 d2)
      events
  in
  let peak = ref 0 and current = ref 0 in
  List.iter
    (fun (_, d) ->
      current := !current + d;
      if !current > !peak then peak := !current)
    events;
  !peak

let certify ?budget ~arch ~power (sched : Ps.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let cores = Array.length arch.Arch.assignment in
  let seen = Array.make cores 0 in
  List.iter
    (fun (s : Ps.slot) ->
      if s.Ps.core < 0 || s.Ps.core >= cores then
        add
          (V.errorf V.Schedule_core_missing V.Soc
             "slot refers to core %d outside 1..%d" (s.Ps.core + 1) cores)
      else begin
        seen.(s.Ps.core) <- seen.(s.Ps.core) + 1;
        if s.Ps.start < 0 then
          add
            (V.errorf V.Schedule_negative_start (V.Core (s.Ps.core + 1))
               "test starts at cycle %d" s.Ps.start);
        if s.Ps.tam <> arch.Arch.assignment.(s.Ps.core) then
          add
            (V.errorf V.Schedule_wrong_tam (V.Core (s.Ps.core + 1))
               "scheduled on TAM %d but the architecture assigns TAM %d"
               (s.Ps.tam + 1)
               (arch.Arch.assignment.(s.Ps.core) + 1));
        let duration = s.Ps.finish - s.Ps.start in
        if duration <> arch.Arch.core_times.(s.Ps.core) then
          add
            (V.errorf V.Schedule_duration_mismatch (V.Core (s.Ps.core + 1))
               "slot lasts %d cycles but the core needs %d at its TAM width"
               duration
               arch.Arch.core_times.(s.Ps.core))
      end)
    sched.Ps.slots;
  Array.iteri
    (fun i n ->
      if n = 0 then
        add
          (V.errorf V.Schedule_core_missing (V.Core (i + 1))
             "core is never tested")
      else if n > 1 then
        add
          (V.errorf V.Schedule_core_duplicated (V.Core (i + 1))
             "core is tested %d times" n))
    seen;
  (* Non-overlap per TAM: sort each TAM's slots by start and compare
     neighbours. *)
  let tams = Array.length arch.Arch.widths in
  for j = 0 to tams - 1 do
    let mine =
      List.filter (fun (s : Ps.slot) -> s.Ps.tam = j) sched.Ps.slots
      |> List.sort (fun (a : Ps.slot) (b : Ps.slot) ->
             compare a.Ps.start b.Ps.start)
    in
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if b.Ps.start < a.Ps.finish then
            add
              (V.errorf V.Schedule_overlap (V.Tam (j + 1))
                 "cores %d and %d overlap: [%d, %d) and [%d, %d)"
                 (a.Ps.core + 1) (b.Ps.core + 1) a.Ps.start a.Ps.finish
                 b.Ps.start b.Ps.finish);
          scan rest
      | _ -> ()
    in
    scan mine
  done;
  let finish_max =
    List.fold_left (fun acc (s : Ps.slot) -> max acc s.Ps.finish) 0 sched.Ps.slots
  in
  if sched.Ps.makespan <> finish_max then
    add
      (V.errorf V.Makespan_mismatch V.Soc
         "reported makespan %d but the last test finishes at %d"
         sched.Ps.makespan finish_max);
  (match sched.Ps.budget with
  | None ->
      if sched.Ps.makespan <> arch.Arch.time then
        add
          (V.errorf V.Makespan_mismatch V.Soc
             "unconstrained makespan %d differs from the architecture's \
              testing time %d"
             sched.Ps.makespan arch.Arch.time)
  | Some _ -> ());
  let peak = recompute_peak power sched.Ps.slots in
  if peak <> sched.Ps.peak_power then
    add
      (V.errorf V.Peak_power_mismatch V.Soc
         "reported peak power %d, recomputed %d" sched.Ps.peak_power peak);
  (match (budget, sched.Ps.budget) with
  | Some cap, _ | None, Some cap ->
      if peak > cap then
        add
          (V.errorf V.Power_budget_exceeded V.Soc
             "instantaneous power reaches %d, over the budget of %d" peak cap)
  | None, None -> ());
  List.rev !violations

(* -- rectangle (strip) schedules ------------------------------------------- *)

let certify_packing ?table ?expected_makespan ~total_width (sched : Pk.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if sched.Pk.total_width <> total_width then
    add
      (V.errorf V.Width_sum_mismatch V.Soc
         "schedule records strip width %d but was requested at %d"
         sched.Pk.total_width total_width);
  List.iter
    (fun (s : Pk.slot) ->
      if s.Pk.width < 1 || s.Pk.x < 0 || s.Pk.x + s.Pk.width > total_width
      then
        add
          (V.errorf V.Rect_out_of_strip
             (V.Core (s.Pk.core + 1))
             "slot occupies wires [%d, %d) of a %d-wide strip" s.Pk.x
             (s.Pk.x + s.Pk.width) total_width);
      if s.Pk.start < 0 then
        add
          (V.errorf V.Schedule_negative_start
             (V.Core (s.Pk.core + 1))
             "test starts at cycle %d" s.Pk.start);
      if s.Pk.finish < s.Pk.start then
        add
          (V.errorf V.Schedule_duration_mismatch
             (V.Core (s.Pk.core + 1))
             "slot finishes at cycle %d before it starts at %d" s.Pk.finish
             s.Pk.start))
    sched.Pk.slots;
  (* Pairwise rectangle disjointness: two slots conflict exactly when
     both their wire ranges and their time ranges intersect. Quadratic,
     but the certifier runs once per schedule, not in a search loop. *)
  let slots = Array.of_list sched.Pk.slots in
  let n = Array.length slots in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = slots.(i) and b = slots.(j) in
      let wires =
        a.Pk.x < b.Pk.x + b.Pk.width && b.Pk.x < a.Pk.x + a.Pk.width
      in
      let time = a.Pk.start < b.Pk.finish && b.Pk.start < a.Pk.finish in
      if wires && time then
        add
          (V.errorf V.Schedule_overlap V.Soc
             "cores %d and %d overlap: wires [%d, %d) * cycles [%d, %d) \
              against wires [%d, %d) * cycles [%d, %d)"
             (a.Pk.core + 1) (b.Pk.core + 1) a.Pk.x (a.Pk.x + a.Pk.width)
             a.Pk.start a.Pk.finish b.Pk.x (b.Pk.x + b.Pk.width) b.Pk.start
             b.Pk.finish)
    done
  done;
  let finish_max =
    List.fold_left (fun acc (s : Pk.slot) -> max acc s.Pk.finish) 0
      sched.Pk.slots
  in
  if sched.Pk.makespan <> finish_max then
    add
      (V.errorf V.Makespan_mismatch V.Soc
         "reported makespan %d but the last test finishes at %d"
         sched.Pk.makespan finish_max);
  (match expected_makespan with
  | Some expected when sched.Pk.makespan <> expected ->
      add
        (V.errorf V.Makespan_mismatch V.Soc
           "schedule makespan %d differs from the claimed time %d"
           sched.Pk.makespan expected)
  | Some _ | None -> ());
  let area =
    List.fold_left
      (fun acc (s : Pk.slot) ->
        acc + (s.Pk.width * max 0 (s.Pk.finish - s.Pk.start)))
      0 sched.Pk.slots
  in
  let bound = Soctam_util.Intutil.ceil_div area total_width in
  if sched.Pk.makespan < bound then
    add
      (V.errorf V.Lower_bound_violated V.Soc
         "makespan %d beats the area lower bound %d (= ceil(%d / %d))"
         sched.Pk.makespan bound area total_width);
  (match table with
  | None -> ()
  | Some table ->
      let cores = Tt.core_count table in
      let seen = Array.make cores 0 in
      List.iter
        (fun (s : Pk.slot) ->
          if s.Pk.core < 0 || s.Pk.core >= cores then
            add
              (V.errorf V.Schedule_core_missing V.Soc
                 "slot refers to core %d outside 1..%d" (s.Pk.core + 1) cores)
          else begin
            seen.(s.Pk.core) <- seen.(s.Pk.core) + 1;
            if s.Pk.width >= 1 && s.Pk.width <= Tt.max_width table then begin
              let need = Tt.time table ~core:s.Pk.core ~width:s.Pk.width in
              let duration = s.Pk.finish - s.Pk.start in
              if duration <> need then
                add
                  (V.errorf V.Schedule_duration_mismatch
                     (V.Core (s.Pk.core + 1))
                     "slot lasts %d cycles but the core needs %d at width %d"
                     duration need s.Pk.width)
            end
          end)
        sched.Pk.slots;
      Array.iteri
        (fun i k ->
          if k = 0 then
            add
              (V.errorf V.Schedule_core_missing
                 (V.Core (i + 1))
                 "core is never tested")
          else if k > 1 then
            add
              (V.errorf V.Schedule_core_duplicated
                 (V.Core (i + 1))
                 "core is tested %d times" k))
        seen);
  List.rev !violations
