(** One-call certification entry points, returning structured
    {!Report.t}s. This is the API the CLI's [soctam check] / [soctam
    lint] subcommands and the [--certify] flag are built on. *)

val architecture :
  ?table:Soctam_core.Time_table.t ->
  ?check_bounds:bool ->
  ?check_exact:bool ->
  ?check_exhaustive:bool ->
  ?check_simulation:bool ->
  ?total_width:int ->
  soc:Soctam_model.Soc.t ->
  Soctam_tam.Architecture.t ->
  Report.t
(** Certify a full architecture (see {!Arch_check.certify}). *)

val claim :
  ?table:Soctam_core.Time_table.t ->
  ?check_bounds:bool ->
  ?check_exact:bool ->
  ?check_exhaustive:bool ->
  ?check_simulation:bool ->
  ?subject:string ->
  soc:Soctam_model.Soc.t ->
  Arch_check.claim ->
  Report.t
(** Certify an untrusted claim (parsed file, corrupted result, ...). *)

val co_optimize :
  ?table:Soctam_core.Time_table.t ->
  ?check_exact:bool ->
  ?check_simulation:bool ->
  soc:Soctam_model.Soc.t ->
  total_width:int ->
  Soctam_core.Co_optimize.t ->
  Report.t
(** Certify a pipeline result: the embedded architecture (against the
    requested [total_width]) plus the pipeline's own bookkeeping —
    [final_time] must equal the architecture's time and must not exceed
    [heuristic_time] (the final exact step only ever improves). *)

val parsed_architecture :
  ?table:Soctam_core.Time_table.t ->
  ?check_exact:bool ->
  ?check_exhaustive:bool ->
  ?check_simulation:bool ->
  ?total_width:int ->
  soc:Soctam_model.Soc.t ->
  Soctam_tam.Arch_format.parsed ->
  Report.t * Soctam_tam.Architecture.t option
(** Certify an architecture loaded from a [.arch] file against an SOC.
    The file carries no testing time, so the times are re-derived; the
    value of the certificate is the structural, bound, exact-optimality
    and simulation checks. A recorded SOC name different from the SOC
    under analysis is a warning. Returns the rebuilt architecture when
    the file is structurally sound. *)

val schedule :
  ?budget:int ->
  soc:Soctam_model.Soc.t ->
  arch:Soctam_tam.Architecture.t ->
  power:Soctam_power.Power_model.t ->
  Soctam_power.Power_schedule.t ->
  Report.t
(** Certify a power schedule and the architecture it runs on. *)

val packing :
  ?table:Soctam_core.Time_table.t ->
  ?expected_makespan:int ->
  ?subject:string ->
  total_width:int ->
  Soctam_pack.Pack_schedule.t ->
  Report.t
(** Certify a rectangle schedule geometrically (see
    {!Schedule_check.certify_packing}); with [table] the schedule must
    also be a complete, duration-exact test of the table's SOC. This is
    what [soctam pack --certify] runs on the packing engine's emitted
    schedule. *)

val soc : Soctam_model.Soc.t -> Report.t
(** Semantic lint of a parsed SOC. *)

val soc_string : ?subject:string -> string -> Report.t * Soctam_model.Soc.t option
(** Lint SOC file contents (both dialects, auto-detected). *)

val soc_file : string -> (Report.t * Soctam_model.Soc.t option, string) result
(** Lint an SOC file. [Error] only on I/O failure. *)
