(** Independent certifier for power-constrained test schedules.

    Re-checks a {!Soctam_power.Power_schedule.t} geometrically (in the
    spirit of the rectangle-packing validators of the 2-D TAM follow-up
    work): every core appears exactly once, on its assigned TAM, for
    exactly its architecture testing time; sessions on one TAM never
    overlap; the makespan and the instantaneous-power profile are
    recomputed from the slots alone and compared against the reported
    values and the budget. *)

val certify :
  ?budget:int ->
  arch:Soctam_tam.Architecture.t ->
  power:Soctam_power.Power_model.t ->
  Soctam_power.Power_schedule.t ->
  Violation.t list
(** [budget] overrides the budget recorded in the schedule (use it to
    certify against a stricter cap). For a schedule without a budget the
    makespan must also equal the architecture's testing time (a
    back-to-back schedule cannot stretch). *)

val certify_packing :
  ?table:Soctam_core.Time_table.t ->
  ?expected_makespan:int ->
  total_width:int ->
  Soctam_pack.Pack_schedule.t ->
  Violation.t list
(** Geometric certification of a rectangle schedule (an engine-emitted
    {!Soctam_pack.Pack_schedule.t}, or a raw level packing rendered
    through [Pack_schedule.of_packing]):

    - every slot lies inside the strip ([width >= 1], [0 <= x],
      [x + width <= total_width]) and starts at a cycle [>= 0];
    - no two slots overlap (their wire ranges and their time ranges
      both intersect);
    - the recorded makespan is the latest finish, is [>= ] the area
      lower bound [ceil (sum (width * duration) / total_width)], and
      equals [expected_makespan] when given;
    - the schedule's own [total_width] matches [total_width].

    With [table], the schedule must additionally be a complete test of
    the table's SOC: every core appears exactly once and each slot
    lasts exactly the core's table time at the slot width — the
    duration check that turns "valid packing" into "valid test
    schedule". Raw level packings are certified without [table]: their
    slot heights are Pareto-front times at the {e cap} width, not the
    slot width, so the duration equation deliberately does not hold. *)
