(** Independent certifier for power-constrained test schedules.

    Re-checks a {!Soctam_power.Power_schedule.t} geometrically (in the
    spirit of the rectangle-packing validators of the 2-D TAM follow-up
    work): every core appears exactly once, on its assigned TAM, for
    exactly its architecture testing time; sessions on one TAM never
    overlap; the makespan and the instantaneous-power profile are
    recomputed from the slots alone and compared against the reported
    values and the budget. *)

val certify :
  ?budget:int ->
  arch:Soctam_tam.Architecture.t ->
  power:Soctam_power.Power_model.t ->
  Soctam_power.Power_schedule.t ->
  Violation.t list
(** [budget] overrides the budget recorded in the schedule (use it to
    certify against a stricter cap). For a schedule without a budget the
    makespan must also equal the architecture's testing time (a
    back-to-back schedule cannot stretch). *)
