module Soc = Soctam_model.Soc
module Design = Soctam_wrapper.Design
module Arch = Soctam_tam.Architecture
module V = Violation

type claim = {
  total_width : int option;
  widths : int array;
  assignment : int array;
  core_times : int array option;
  tam_times : int array option;
  time : int;
}

let claim_of_architecture ?total_width (a : Arch.t) =
  {
    total_width;
    widths = Array.copy a.Arch.widths;
    assignment = Array.copy a.Arch.assignment;
    core_times = Some (Array.copy a.Arch.core_times);
    tam_times = Some (Array.copy a.Arch.tam_times);
    time = a.Arch.time;
  }

(* Structural invariants: the partition and assignment must describe a
   well-formed test-bus architecture before any time can be recomputed. *)
let structure ~soc claim =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let tams = Array.length claim.widths in
  if tams = 0 then
    add (V.errorf V.Empty_partition V.Soc "the width partition has no TAM");
  Array.iteri
    (fun j w ->
      if w < 1 then
        add
          (V.errorf V.Nonpositive_width (V.Tam (j + 1))
             "TAM width %d is not positive" w))
    claim.widths;
  (match claim.total_width with
  | Some total when tams > 0 ->
      let sum = Soctam_util.Intutil.sum claim.widths in
      if sum <> total then
        add
          (V.errorf V.Width_sum_mismatch V.Soc
             "widths sum to %d but the optimizer was given W = %d" sum total)
  | Some _ | None -> ());
  let cores = Soc.core_count soc in
  if Array.length claim.assignment <> cores then
    add
      (V.errorf V.Assignment_length_mismatch V.Soc
         "assignment covers %d cores but the SOC has %d (dropped or surplus \
          core)"
         (Array.length claim.assignment)
         cores)
  else
    Array.iteri
      (fun i j ->
        if j < 0 || j >= tams then
          add
            (V.errorf V.Assignment_out_of_range (V.Core (i + 1))
               "core assigned to TAM %d, but only TAMs 1..%d exist" (j + 1)
               tams))
      claim.assignment;
  List.rev !violations

(* Exact per-core recomputation from the wrapper-design primitive. *)
let recompute ~soc claim =
  let cores = Soc.core_count soc in
  let core_times =
    Array.init cores (fun i ->
        (Design.design (Soc.core soc i) ~width:claim.widths.(claim.assignment.(i)))
          .Design.time)
  in
  let tam_times = Array.make (Array.length claim.widths) 0 in
  Array.iteri
    (fun i j -> tam_times.(j) <- tam_times.(j) + core_times.(i))
    claim.assignment;
  (core_times, tam_times, Soctam_util.Intutil.max_element tam_times)

let compare_times ~claimed ~recomputed ~kind ~loc ~what =
  let violations = ref [] in
  Array.iteri
    (fun i claimed_time ->
      if claimed_time <> recomputed.(i) then
        violations :=
          V.errorf kind (loc i) "claimed %s %d, recomputed %d" what
            claimed_time recomputed.(i)
          :: !violations)
    claimed;
  List.rev !violations

let ensure_table ?table soc ~width =
  match table with
  | Some t
    when Soctam_core.Time_table.max_width t >= width
         && Soctam_core.Time_table.core_count t = Soc.core_count soc ->
      t
  | Some _ | None -> Soctam_core.Time_table.build soc ~max_width:width

let certify_claim ?table ?(check_bounds = true) ?(check_exact = false)
    ?(check_exhaustive = false) ?(check_simulation = false) ~soc claim =
  let structural = structure ~soc claim in
  if structural <> [] then structural
  else begin
    let violations = ref [] in
    let add v = violations := v :: !violations in
    let core_times, tam_times, time = recompute ~soc claim in
    (match claim.core_times with
    | Some claimed when Array.length claimed <> Array.length core_times ->
        add
          (V.errorf V.Core_time_mismatch V.Soc
             "claimed %d core times for %d cores" (Array.length claimed)
             (Array.length core_times))
    | Some claimed ->
        List.iter add
          (compare_times ~claimed ~recomputed:core_times
             ~kind:V.Core_time_mismatch
             ~loc:(fun i -> V.Core (i + 1))
             ~what:"core time")
    | None -> ());
    (match claim.tam_times with
    | Some claimed when Array.length claimed <> Array.length tam_times ->
        add
          (V.errorf V.Tam_time_mismatch V.Soc "claimed %d TAM times for %d TAMs"
             (Array.length claimed) (Array.length tam_times))
    | Some claimed ->
        List.iter add
          (compare_times ~claimed ~recomputed:tam_times
             ~kind:V.Tam_time_mismatch
             ~loc:(fun j -> V.Tam (j + 1))
             ~what:"TAM time")
    | None -> ());
    if claim.time <> time then
      add
        (V.errorf V.Soc_time_mismatch V.Soc
           "claimed SOC time %d, recomputed max over TAMs is %d" claim.time
           time);
    let total_width =
      match claim.total_width with
      | Some w -> max w (Soctam_util.Intutil.sum claim.widths)
      | None -> Soctam_util.Intutil.sum claim.widths
    in
    let table = lazy (ensure_table ?table soc ~width:total_width) in
    if check_bounds then begin
      let bounds =
        Soctam_core.Bounds.compute (Lazy.force table) ~total_width
      in
      if claim.time < bounds.Soctam_core.Bounds.combined then
        add
          (V.errorf V.Lower_bound_violated V.Soc
             "claimed time %d beats the admissible lower bound %d (bottleneck \
              %d, wire volume %d): the claim is impossible"
             claim.time bounds.Soctam_core.Bounds.combined
             bounds.Soctam_core.Bounds.bottleneck
             bounds.Soctam_core.Bounds.wire_volume)
    end;
    if check_exact then begin
      let times =
        Soctam_core.Time_table.matrix (Lazy.force table) ~widths:claim.widths
      in
      let exact = Soctam_ilp.Exact.solve_bb ~widths:claim.widths ~times () in
      if exact.Soctam_ilp.Exact.optimal && claim.time < exact.Soctam_ilp.Exact.time
      then
        add
          (V.errorf V.Beats_exhaustive_optimum V.Soc
             "claimed time %d beats the proven P_AW optimum %d for partition \
              %s"
             claim.time exact.Soctam_ilp.Exact.time
             (Format.asprintf "%a" Arch.pp_partition claim.widths))
    end;
    if check_exhaustive then begin
      let exhaustive =
        Soctam_core.Exhaustive.run_with Soctam_core.Run_config.default
          ~table:(Lazy.force table) ~total_width
          ~tams:(Array.length claim.widths)
      in
      if
        Soctam_core.Outcome.is_complete
          exhaustive.Soctam_core.Exhaustive.outcome
        && claim.time < exhaustive.Soctam_core.Exhaustive.time
      then
        add
          (V.errorf V.Beats_exhaustive_optimum V.Soc
             "claimed time %d beats the exhaustive optimum %d over all %d-TAM \
              partitions of W = %d"
             claim.time exhaustive.Soctam_core.Exhaustive.time
             (Array.length claim.widths) total_width)
    end;
    if check_simulation && claim.time = time then begin
      let architecture =
        Arch.make ~soc ~widths:claim.widths ~assignment:claim.assignment
      in
      let sim = Soctam_sim.Soc_sim.run soc architecture in
      if sim.Soctam_sim.Soc_sim.soc_cycles <> time then
        add
          (V.errorf V.Simulation_mismatch V.Soc
             "cycle-level simulation finishes at %d cycles, analytical \
              recompute says %d"
             sim.Soctam_sim.Soc_sim.soc_cycles time)
    end;
    List.rev !violations
  end

let certify ?table ?check_bounds ?check_exact ?check_exhaustive
    ?check_simulation ?total_width ~soc architecture =
  certify_claim ?table ?check_bounds ?check_exact ?check_exhaustive
    ?check_simulation ~soc
    (claim_of_architecture ?total_width architecture)
