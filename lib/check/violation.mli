(** Typed diagnostics emitted by the [Soctam_check] certifiers and linters.

    Every finding is a {!t}: a severity, a machine-readable {!kind}, a
    {!location} inside the artifact under analysis, and a human-readable
    message. Checkers never raise on bad input — they return the complete
    list of violations they can establish, so a single pass surfaces every
    problem at once (unlike the raise-on-first-error smart constructors
    the optimizers use internally). *)

type severity =
  | Error  (** the artifact is wrong: a certified claim does not hold *)
  | Warning  (** suspicious but not provably wrong *)
  | Info  (** observation worth reporting, no action needed *)

type location =
  | Soc  (** the SOC / architecture / schedule as a whole *)
  | Core of int  (** 1-based core id *)
  | Tam of int  (** 1-based TAM number *)
  | Line of int  (** 1-based line of an input file *)
  | File of string * int
      (** source file and 1-based line, for the source-level analyzer *)

(** The closed violation taxonomy. Each constructor names one invariant;
    {!kind_name} gives its stable kebab-case identifier used in the JSON
    rendering and the CLI output. *)
type kind =
  (* Architecture certifier. *)
  | Empty_partition  (** no TAM at all *)
  | Nonpositive_width  (** some TAM width < 1 *)
  | Width_sum_mismatch  (** widths do not sum to the requested total W *)
  | Assignment_length_mismatch  (** dropped or surplus core *)
  | Assignment_out_of_range  (** core assigned to a non-existent TAM *)
  | Core_time_mismatch  (** claimed core time <> wrapper-design recompute *)
  | Tam_time_mismatch  (** claimed TAM time <> sum of its core times *)
  | Soc_time_mismatch  (** claimed SOC time <> max over TAM times *)
  | Lower_bound_violated  (** claimed time beats an admissible lower bound *)
  | Beats_exhaustive_optimum  (** claimed time beats the exact optimum *)
  | Simulation_mismatch  (** cycle-level simulation disagrees *)
  | Pipeline_inconsistent  (** optimizer result fields disagree *)
  | Soc_name_mismatch  (** artifact recorded for a different SOC *)
  (* Schedule / power certifier. *)
  | Schedule_core_missing
  | Schedule_core_duplicated
  | Schedule_wrong_tam  (** slot on a TAM other than the core's *)
  | Schedule_duration_mismatch
  | Schedule_overlap  (** two sessions overlap on one TAM *)
  | Schedule_negative_start
  | Rect_out_of_strip
      (** a rectangle schedule slot sticks out of the [0, W) strip *)
  | Makespan_mismatch
  | Peak_power_mismatch  (** reported peak <> recomputed peak *)
  | Power_budget_exceeded
  (* Input lint. *)
  | Syntax_error
  | Duplicate_core_id
  | Nonconsecutive_core_ids
  | Zero_patterns
  | No_test_data  (** file or SOC without any core *)
  | Scan_chain_mismatch  (** declared chain count <> lengths listed *)
  | Module_count_mismatch  (** TotalModules disagrees with modules found *)
  | Name_complexity_mismatch
      (** SOC named like p93791 whose test-complexity number is far off *)
  | Degenerate_core  (** no terminals and no scan: nothing to test *)
  (* Source-level analyzer ([Soctam_analysis]). *)
  | Polymorphic_comparison
      (** DET-POLY: polymorphic [=]/[compare]/[Hashtbl.hash] in a solver
          layer *)
  | Entropy_source
      (** DET-ENTROPY: wall clock or [Random] outside the sanctioned
          wrappers *)
  | Unguarded_shared_state
      (** DOM-SHARED: unsynchronized top-level mutable state reachable
          from pool domains *)
  | Domain_escape
      (** DOM-ESCAPE: mutable value created outside a worker closure but
          mutated inside one without a guarding mutex *)
  | Lock_discipline
      (** LOCK-RAISE: possible raise while a mutex is held without
          [Fun.protect], or inconsistent lock acquisition order *)
  | Hot_allocation
      (** ALLOC-HOT: allocation form inside a function or loop marked
          [\[@soctam.hot\]] *)
  | Deprecated_api  (** API-DEPRECATED: in-repo call to a deprecated entry *)
  | Missing_interface  (** IFACE: a [lib/] module without an [.mli] *)
  | Worker_effect
      (** EFFECT-WORKER: a write effect on non-worker-local mutable state
          reachable from a pool/domain worker closure without an atomic
          or mutex guard *)
  | Outcome_dropped
      (** OUTCOME-DROP: an [Outcome.t] match or binding that discards the
          [Budget_exhausted] / [Interrupted] resume checkpoint *)
  | Engine_caps_mismatch
      (** ENGINE-CAPS: an [Engine.S] caps record contradicted by the
          implementation (undeclared parallelism, [proves] without a
          certificate) *)
  | Tau_discipline
      (** TAU-DISCIPLINE: a [Shared_min] read in a [\[@soctam.hot\]]
          scope bypassing the worker mirror, or a tau export skipping the
          mirror's strict-improvement filter *)
  | Analysis_error
      (** the analyzer itself could not proceed: unparseable source, bad
          suppression payload, malformed baseline line *)

type t = {
  severity : severity;
  kind : kind;
  location : location;
  message : string;
}

val make : severity -> kind -> location -> string -> t

val errorf :
  kind -> location -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [errorf kind loc fmt ...] builds an [Error]-severity violation with a
    formatted message. *)

val warningf :
  kind -> location -> ('a, Format.formatter, unit, t) format4 -> 'a

val infof : kind -> location -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val kind_name : kind -> string
(** Stable kebab-case identifier, e.g. ["width-sum-mismatch"]. *)

val compare_severity : severity -> severity -> int
(** [Error] orders before [Warning] orders before [Info]. *)

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit
(** One line: ["error[width-sum-mismatch] at TAM 2: ..."]. *)
