(* soctam: command-line driver for wrapper/TAM co-optimization.

   Subcommands: info, wrapper, optimize, exhaustive, tables, gen. An SOC
   is named either by a built-in benchmark (d695, p21241, p31108, p93791)
   or by a path to a .soc file. *)

let load_soc spec =
  match Soctam_soc_data.Philips.by_name spec with
  | Some soc -> Ok soc
  | None ->
      if Sys.file_exists spec then begin
        (* Accept both the one-line .soc dialect and the ITC'02-style
           hierarchical dialect. *)
        match Soctam_soc_data.Soc_format.load spec with
        | Ok soc -> Ok soc
        | Error flat_err -> (
            match Soctam_soc_data.Itc02_format.load spec with
            | Ok soc -> Ok soc
            | Error itc_err ->
                Error
                  (Printf.sprintf
                     "cannot parse %s (as .soc: %s; as ITC'02 style: %s)"
                     spec flat_err itc_err))
      end
      else
        Error
          (Printf.sprintf
             "%S is neither a built-in SOC (d695, p21241, p31108, p93791) \
              nor an existing file"
             spec)

let with_soc spec f =
  match load_soc spec with
  | Error msg ->
      prerr_endline ("soctam: " ^ msg);
      1
  | Ok soc -> f soc

(* -- observability --------------------------------------------------------- *)

(* Run [f] under an observability collector when the user asked for one
   (--stats[=FILE]). The JSON document goes to FILE, or to stdout for
   the "-" destination; the one-line human summary always goes to
   stderr, so a run with --stats=FILE keeps stdout byte-identical to a
   run without the flag. *)
let with_stats dest f =
  match dest with
  | None -> f Soctam_obs.Obs.null
  | Some dest -> (
      let stats = Soctam_obs.Obs.create () in
      let status = f stats in
      let snap = Soctam_obs.Obs.snapshot stats in
      let doc = Soctam_report.Stats_json.render_string snap in
      prerr_endline (Soctam_report.Stats_json.summary snap);
      match dest with
      | "-" ->
          print_endline doc;
          status
      | path -> (
          match
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc doc;
                output_char oc '\n')
          with
          | () -> status
          | exception Sys_error msg ->
              prerr_endline ("soctam: cannot write stats: " ^ msg);
              if status = 0 then 1 else status))

(* -- shared run options ---------------------------------------------------- *)

(* The options every long-running solver subcommand (the engine
   subcommands, sweep, race) shares: parallelism, observability, a
   wall-clock budget, and the checkpoint / resume lifecycle. One record,
   one cmdliner term, one Run_config builder — a new solver subcommand
   picks all of them up by composing [run_opts_term] instead of
   redeclaring flags. *)
type run_opts = {
  ro_jobs : int;
  ro_stats : string option;
  ro_budget : float option;
  ro_checkpoint : string option;
  ro_every : int;
  ro_resume : string option;
  ro_front_cache : int option;
}

(* The embedded tokens are deliberately unused here: the solver already
   persisted them to --checkpoint's path (that is what the resume hint
   points at), and this function only maps the outcome to an exit
   status. *)
let[@soctam.allow "OUTCOME-DROP"] outcome_status ?checkpoint outcome =
  match (outcome : Soctam_core.Outcome.t) with
  | Complete -> 0
  | Budget_exhausted _ ->
      (match checkpoint with
      | Some path ->
          Printf.eprintf "soctam: budget exhausted; resume with --resume %s\n%!"
            path
      | None ->
          prerr_endline
            "soctam: budget exhausted; pass --checkpoint to make truncated \
             runs resumable");
      0
  | Interrupted _ ->
      (match checkpoint with
      | Some path ->
          Printf.eprintf "soctam: interrupted; resume with --resume %s\n%!"
            path
      | None -> prerr_endline "soctam: interrupted");
      130

(* Build the [Run_config.t] for [soc] from the shared options and hand it
   to [f]: loads --resume's checkpoint (a bad file is a clean error, not
   a crash), threads the --stats collector, and installs the cooperative
   SIGINT handler when the run writes checkpoints — the signal then stops
   the run at the next slice boundary with a final checkpoint on disk
   instead of killing the process mid-write. *)
let with_run_config opts soc f =
  let resume =
    match opts.ro_resume with
    | None -> Ok None
    | Some path -> Result.map Option.some (Soctam_core.Checkpoint.load path)
  in
  match resume with
  | Error msg ->
      prerr_endline ("soctam: cannot resume: " ^ msg);
      1
  | Ok resume ->
      Option.iter
        (fun cp ->
          prerr_endline
            ("soctam: resuming " ^ Soctam_core.Checkpoint.describe cp))
        resume;
      Option.iter Soctam_wrapper.Front.set_capacity opts.ro_front_cache;
      with_stats opts.ro_stats (fun stats ->
          let open Soctam_core.Run_config in
          let cfg =
            default |> with_jobs opts.ro_jobs |> with_stats stats
            |> with_soc_name soc.Soctam_model.Soc.name
            |> with_checkpoint_every opts.ro_every
          in
          let cfg =
            match opts.ro_budget with
            | Some seconds -> with_time_budget seconds cfg
            | None -> cfg
          in
          let cfg =
            match opts.ro_checkpoint with
            | Some path -> with_checkpoint path cfg
            | None -> cfg
          in
          let cfg =
            match resume with Some cp -> with_resume cp cfg | None -> cfg
          in
          let cfg =
            if checkpointing cfg then begin
              let token = Soctam_util.Cancel.create () in
              Soctam_util.Cancel.install_sigint token;
              with_cancel (fun () -> Soctam_util.Cancel.requested token) cfg
            end
            else cfg
          in
          try f cfg with
          | Invalid_argument msg | Failure msg ->
              prerr_endline ("soctam: " ^ msg);
              1)

(* -- diagnostics reporting ------------------------------------------------ *)

let print_report ?(json = false) report =
  if json then print_endline (Soctam_report.Check_json.render report)
  else Format.printf "%a@." Soctam_check.Report.pp report;
  if Soctam_check.Report.ok report then 0 else 1

(* -- info ---------------------------------------------------------------- *)

let info_cmd spec verbose =
  with_soc spec (fun soc ->
      if verbose then Format.printf "%a@." Soctam_model.Soc.pp soc
      else Format.printf "%a@." Soctam_model.Soc.pp_summary soc;
      0)

(* -- wrapper ------------------------------------------------------------- *)

let wrapper_cmd spec core_id width layout =
  with_soc spec (fun soc ->
      if core_id < 1 || core_id > Soctam_model.Soc.core_count soc then begin
        prerr_endline "soctam: core id out of range";
        1
      end
      else begin
        let core = Soctam_model.Soc.core soc (core_id - 1) in
        Format.printf "%a@." Soctam_model.Core_data.pp core;
        let design = Soctam_wrapper.Design.design core ~width in
        Format.printf "%a@." Soctam_wrapper.Design.pp design;
        if layout then
          Format.printf "%a@." Soctam_wrapper.Design.pp_layout design;
        Format.printf "pareto widths (width, time):@.";
        List.iter
          (fun (w, t) -> Format.printf "  %3d %8d@." w t)
          (Soctam_wrapper.Design.pareto_widths core ~max_width:width);
        Format.printf "max useful width: %d@."
          (Soctam_wrapper.Design.max_useful_width core);
        0
      end)

(* -- engine subcommands --------------------------------------------------- *)

(* optimize / pack / anneal / exhaustive are the same subcommand over
   different engines: resolve the engine in the registry, validate the
   shared flag set against its capability record, build one Run_config,
   run, and present the uniform report. The per-engine texture lives in
   the engine's own note lines, not in per-subcommand plumbing. *)

module Engine = Soctam_core.Engine

(* Reject flag/engine combinations the engine's caps rule out, with one
   wording for every subcommand. *)
let engine_flag_error engine ~tams ~jobs =
  let caps = Engine.caps engine in
  let name = Engine.name engine in
  if caps.Engine.needs_fixed_tams && tams = None then
    Some (Printf.sprintf "engine %s solves one TAM count at a time: pass -b B"
            name)
  else if caps.Engine.free_tams_only && tams <> None then
    Some (Printf.sprintf
            "engine %s searches the TAM count itself: drop -b (bound it with \
             --max-tams)"
            name)
  else if (not caps.Engine.parallel) && jobs > 1 then
    Some (Printf.sprintf "engine %s is sequential: drop -j" name)
  else None

(* Certificate subjects stay what they were before the registry rework
   so certification output remains recognizable (and pinned by tests). *)
let certify_subject soc ~width engine_name =
  match engine_name with
  | "pe" ->
      Printf.sprintf "%s co-optimization (W = %d)" soc.Soctam_model.Soc.name
        width
  | "anneal" -> "simulated annealing result"
  | "exhaustive" | "ilp" -> "exhaustive baseline result"
  | name ->
      Printf.sprintf "%s %s result (W = %d)" soc.Soctam_model.Soc.name name
        width

(* Pure status word for the result banner; the token itself is handled
   (persisted and hinted at) by [outcome_status]. *)
let[@soctam.allow "OUTCOME-DROP"] outcome_word = function
  | Soctam_core.Outcome.Complete -> "complete"
  | Soctam_core.Outcome.Budget_exhausted _ -> "budget hit, incumbent"
  | Soctam_core.Outcome.Interrupted _ -> "interrupted, incumbent"

let print_bounds table ~width ~time =
  let bounds = Soctam_core.Bounds.compute table ~total_width:width in
  Format.printf
    "lower bounds: bottleneck %d (core %d), wire volume %d; gap %+.2f%%%s@."
    bounds.Soctam_core.Bounds.bottleneck
    (bounds.Soctam_core.Bounds.bottleneck_core + 1)
    bounds.Soctam_core.Bounds.wire_volume
    (Soctam_core.Bounds.gap_pct bounds ~time)
    (if Soctam_core.Bounds.saturated bounds ~time then
       " (saturated: more wires or TAMs cannot help)"
     else "")

let save_architecture soc architecture = function
  | None -> 0
  | Some path -> (
      match
        Soctam_tam.Arch_format.save path ~soc_name:soc.Soctam_model.Soc.name
          architecture
      with
      | Ok () ->
          Format.printf "architecture written to %s@." path;
          0
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1)

let certify_claim ~table ~check_exact ~subject soc ~width ~widths ~assignment
    ~time =
  let claim =
    {
      Soctam_check.Arch_check.total_width = Some width;
      widths;
      assignment;
      core_times = None;
      tam_times = None;
      time;
    }
  in
  print_report (Soctam_check.Certify.claim ~table ~check_exact ~subject ~soc claim)

(* The driver shared by every engine subcommand. [engine] is a registry
   lookup result so subcommands that parameterize their engine (anneal's
   --iterations/--seed) slot in the same way. *)
let engine_cmd engine spec width tams max_tams opts save_arch certify =
  with_soc spec (fun soc ->
      match engine with
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1
      | Ok engine -> (
          match engine_flag_error engine ~tams ~jobs:opts.ro_jobs with
          | Some msg ->
              prerr_endline ("soctam: " ^ msg);
              1
          | None ->
              with_run_config opts soc (fun cfg ->
                  let stats = cfg.Soctam_core.Run_config.stats in
                  let table =
                    Soctam_core.Time_table.build ~stats soc ~max_width:width
                  in
                  let cfg =
                    match tams with
                    | Some tams -> Soctam_core.Run_config.with_tams tams cfg
                    | None -> Soctam_core.Run_config.with_max_tams max_tams cfg
                  in
                  let report, secs =
                    Soctam_util.Timer.time (fun () ->
                        Engine.run engine cfg
                          { Engine.table; total_width = width })
                  in
                  let name = Engine.name engine in
                  if Array.length report.Engine.r_widths = 0 then begin
                    (* Possible only under an imported bound or a budget
                       spent before the first incumbent. *)
                    Format.printf "%s: no architecture (%s), %.2fs@." name
                      (outcome_word report.Engine.r_outcome) secs;
                    List.iter
                      (fun note -> Format.printf "  %s@." note)
                      report.Engine.r_notes;
                    outcome_status ?checkpoint:opts.ro_checkpoint
                      report.Engine.r_outcome
                  end
                  else begin
                    let architecture =
                      Soctam_tam.Architecture.make ~soc
                        ~widths:report.Engine.r_widths
                        ~assignment:report.Engine.r_assignment
                    in
                    Format.printf "%a@." Soctam_tam.Architecture.pp
                      architecture;
                    Format.printf "%s: partition %a, time %d (%s), %.2fs@."
                      name Soctam_tam.Architecture.pp_partition
                      report.Engine.r_widths report.Engine.r_time
                      (outcome_word report.Engine.r_outcome)
                      secs;
                    List.iter
                      (fun note -> Format.printf "  %s@." note)
                      report.Engine.r_notes;
                    Format.printf "%a@." Soctam_tam.Cost.pp
                      (Soctam_tam.Cost.estimate soc architecture);
                    print_bounds table ~width ~time:report.Engine.r_time;
                    let save_status =
                      save_architecture soc architecture save_arch
                    in
                    let certify_status =
                      if certify then
                        certify_claim ~table
                          ~check_exact:(Engine.cert engine).Engine.cert_exact
                          ~subject:(certify_subject soc ~width name)
                          soc ~width ~widths:report.Engine.r_widths
                          ~assignment:report.Engine.r_assignment
                          ~time:report.Engine.r_time
                      else 0
                    in
                    let oc_status =
                      outcome_status ?checkpoint:opts.ro_checkpoint
                        report.Engine.r_outcome
                    in
                    max oc_status
                      (if save_status <> 0 then save_status
                       else certify_status)
                  end)))

(* -- race ----------------------------------------------------------------- *)

(* The portfolio racer: every engine of --engines attacks the instance
   in round-robin slices under one shared pruning bound. Wall time goes
   to stderr so stdout is byte-identical for every -j (the engines and
   the racer are deterministic; only the clock is not). *)
let race_cmd spec width tams max_tams engines_spec opts save_arch certify =
  with_soc spec (fun soc ->
      match Soctam_race.Registry.parse engines_spec with
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1
      | Ok engines ->
          with_run_config opts soc (fun cfg ->
              let stats = cfg.Soctam_core.Run_config.stats in
              let table =
                Soctam_core.Time_table.build ~stats soc ~max_width:width
              in
              let cfg =
                match tams with
                | Some tams -> Soctam_core.Run_config.with_tams tams cfg
                | None -> Soctam_core.Run_config.with_max_tams max_tams cfg
              in
              let result, secs =
                Soctam_util.Timer.time (fun () ->
                    Soctam_race.Race.run cfg ~engines ~table
                      ~total_width:width)
              in
              Printf.eprintf "soctam: race wall time %.2fs\n%!" secs;
              Format.printf "race: time %d (%s) after %d rounds (%d slices)@."
                result.Soctam_race.Race.time
                (outcome_word result.Soctam_race.Race.outcome)
                result.Soctam_race.Race.rounds result.Soctam_race.Race.slices;
              Format.printf "  winner %s%s; tau imports %d, exports %d@."
                (match result.Soctam_race.Race.winner with
                | Some w -> w
                | None -> "none (even-split fallback)")
                (if result.Soctam_race.Race.proven_optimal then
                   ", proven optimal"
                 else "")
                result.Soctam_race.Race.tau_imports
                result.Soctam_race.Race.tau_exports;
              List.iter
                (fun er ->
                  Format.printf "  %-10s %d slices, %d improvements%s@."
                    er.Soctam_race.Race.er_name
                    er.Soctam_race.Race.er_slices
                    er.Soctam_race.Race.er_improvements
                    (if er.Soctam_race.Race.er_proved then ", proved"
                     else if er.Soctam_race.Race.er_done then ", done"
                     else ""))
                result.Soctam_race.Race.engines;
              (* Seed TR-Architect from the race winner: a free-TAM-count
                 instance whose optimum is not proven may still have an
                 improving hill-climb move. The climb never worsens its
                 seed, so the printed architecture stays never-worse than
                 the best solo engine. *)
              let widths, assignment, time =
                if
                  tams = None
                  && Soctam_core.Outcome.is_complete
                       result.Soctam_race.Race.outcome
                  && not result.Soctam_race.Race.proven_optimal
                then begin
                  let climb =
                    Soctam_architect.Tr_architect.climb ~max_tams ~table
                      ~widths:result.Soctam_race.Race.widths ()
                  in
                  if climb.Soctam_architect.Tr_architect.time
                     < result.Soctam_race.Race.time
                  then begin
                    Format.printf
                      "polish: TR-Architect climb improved %d -> %d@."
                      result.Soctam_race.Race.time
                      climb.Soctam_architect.Tr_architect.time;
                    ( climb.Soctam_architect.Tr_architect.widths,
                      climb.Soctam_architect.Tr_architect.assignment,
                      climb.Soctam_architect.Tr_architect.time )
                  end
                  else
                    ( result.Soctam_race.Race.widths,
                      result.Soctam_race.Race.assignment,
                      result.Soctam_race.Race.time )
                end
                else
                  ( result.Soctam_race.Race.widths,
                    result.Soctam_race.Race.assignment,
                    result.Soctam_race.Race.time )
              in
              let architecture =
                Soctam_tam.Architecture.make ~soc ~widths ~assignment
              in
              Format.printf "%a@." Soctam_tam.Architecture.pp architecture;
              print_bounds table ~width ~time;
              let save_status = save_architecture soc architecture save_arch in
              let certify_status =
                if certify then
                  certify_claim ~table ~check_exact:true
                    ~subject:
                      (Printf.sprintf "%s race winner (W = %d)"
                         soc.Soctam_model.Soc.name width)
                    soc ~width ~widths ~assignment ~time
                else 0
              in
              let oc_status =
                outcome_status ?checkpoint:opts.ro_checkpoint
                  result.Soctam_race.Race.outcome
              in
              max oc_status
                (if save_status <> 0 then save_status else certify_status)))

(* -- compare ------------------------------------------------------------- *)

let compare_cmd spec width =
  with_soc spec (fun soc ->
      let entries = Soctam_baselines.Compare.run soc ~width in
      let best = (List.hd entries).Soctam_baselines.Compare.time in
      Format.printf "architecture comparison at W = %d:@." width;
      List.iter
        (fun e ->
          Format.printf "  %-22s %10d cycles  (%.2fx)  %s@."
            e.Soctam_baselines.Compare.architecture
            e.Soctam_baselines.Compare.time
            (float_of_int e.Soctam_baselines.Compare.time /. float_of_int best)
            e.Soctam_baselines.Compare.detail)
        entries;
      0)

(* -- schedule ------------------------------------------------------------ *)

let glyph core =
  (* One distinguishable glyph per core id for the Gantt chart. *)
  let alphabet = "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  String.make 1 alphabet.[core mod String.length alphabet]

let schedule_cmd spec width budget_pct certify =
  with_soc spec (fun soc ->
      let result =
        Soctam_core.Co_optimize.run_with Soctam_core.Run_config.default soc
          ~total_width:width
      in
      let architecture = result.Soctam_core.Co_optimize.architecture in
      let power = Soctam_power.Power_model.estimate soc in
      let free = Soctam_power.Power_schedule.unconstrained architecture power in
      let budget =
        max
          (Soctam_power.Power_model.max_power power)
          (free.Soctam_power.Power_schedule.peak_power * budget_pct / 100)
      in
      Format.printf
        "unconstrained: makespan %d, peak power %d@.budget (%d%% of peak, \
         floored at the hungriest core): %d@.@."
        free.Soctam_power.Power_schedule.makespan
        free.Soctam_power.Power_schedule.peak_power budget_pct budget;
      match
        Soctam_power.Power_schedule.constrained architecture power ~budget
      with
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1
      | Ok sched ->
          Format.printf "power-capped: makespan %d (%+.2f%%), peak power %d@.@."
            sched.Soctam_power.Power_schedule.makespan
            (100.
            *. float_of_int
                 (sched.Soctam_power.Power_schedule.makespan
                 - free.Soctam_power.Power_schedule.makespan)
            /. float_of_int free.Soctam_power.Power_schedule.makespan)
            sched.Soctam_power.Power_schedule.peak_power;
          let items =
            List.map
              (fun (s : Soctam_power.Power_schedule.slot) ->
                {
                  Soctam_report.Gantt.label = glyph s.Soctam_power.Power_schedule.core;
                  lane = s.Soctam_power.Power_schedule.tam;
                  start = s.Soctam_power.Power_schedule.start;
                  finish = s.Soctam_power.Power_schedule.finish;
                })
              sched.Soctam_power.Power_schedule.slots
          in
          print_string
            (Soctam_report.Gantt.render
               ~lanes:(Array.length architecture.Soctam_tam.Architecture.widths)
               ~total:sched.Soctam_power.Power_schedule.makespan items);
          if certify then
            print_report
              (Soctam_check.Certify.schedule ~soc ~arch:architecture ~power
                 sched)
          else 0)

(* -- sweep --------------------------------------------------------------- *)

let sweep_cmd spec from_w to_w step tolerance opts =
  with_soc spec (fun soc ->
      if from_w < 1 || to_w < from_w || step < 1 then begin
        prerr_endline "soctam: need 1 <= from <= to and step >= 1";
        1
      end
      else begin
        let widths =
          let rec loop w acc = if w > to_w then List.rev acc else loop (w + step) (w :: acc) in
          loop from_w []
        in
        with_run_config opts soc (fun cfg ->
        let result = Soctam_core.Sweep.run_with cfg soc ~widths in
        let points = result.Soctam_core.Sweep.points in
        Format.printf "%a@." Soctam_core.Sweep.pp points;
        (match Soctam_core.Sweep.knee ~tolerance_pct:tolerance points with
        | Some knee ->
            Format.printf
              "knee: W = %d reaches within %.0f%% of the best time in the \
               sweep (%d cycles)@."
              knee.Soctam_core.Sweep.width tolerance
              knee.Soctam_core.Sweep.time
        | None -> ());
        outcome_status ?checkpoint:opts.ro_checkpoint
          result.Soctam_core.Sweep.outcome)
      end)

(* -- tables -------------------------------------------------------------- *)

let tables_cmd ids budget markdown csv =
  let ids =
    match ids with [] -> Soctam_report.Experiments.table_ids | ids -> ids
  in
  let unknown =
    List.filter
      (fun id -> not (List.mem id Soctam_report.Experiments.table_ids))
      ids
  in
  if unknown <> [] then begin
    Printf.eprintf "soctam: unknown table id(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " Soctam_report.Experiments.table_ids);
    1
  end
  else begin
    let ctx = Soctam_report.Experiments.context ~exhaustive_budget:budget () in
    let render =
      if csv then Soctam_report.Texttable.render_csv
      else if markdown then Soctam_report.Texttable.render_markdown
      else Soctam_report.Texttable.render
    in
    List.iter
      (fun id ->
        print_string (render (Soctam_report.Experiments.run ctx id));
        print_newline ())
      ids;
    0
  end

(* -- verify -------------------------------------------------------------- *)

let verify_cmd spec arch_path =
  with_soc spec (fun soc ->
      match Soctam_tam.Arch_format.load arch_path with
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1
      | Ok parsed -> (
          (match parsed.Soctam_tam.Arch_format.soc_name with
          | Some name when name <> soc.Soctam_model.Soc.name ->
              Format.printf
                "warning: architecture was saved for SOC %s, verifying \
                 against %s@."
                name soc.Soctam_model.Soc.name
          | Some _ | None -> ());
          match
            Soctam_tam.Architecture.make ~soc
              ~widths:parsed.Soctam_tam.Arch_format.widths
              ~assignment:parsed.Soctam_tam.Arch_format.assignment
          with
          | exception Invalid_argument msg ->
              Format.printf "INVALID: %s@." msg;
              1
          | architecture ->
              let sim = Soctam_sim.Soc_sim.run soc architecture in
              let analytical = architecture.Soctam_tam.Architecture.time in
              let simulated = sim.Soctam_sim.Soc_sim.soc_cycles in
              Format.printf "%a@." Soctam_tam.Architecture.pp architecture;
              Format.printf
                "analytical SOC time %d, simulated %d: %s@.wire utilization \
                 %.1f%%, idle wire-cycles %d of %d@."
                analytical simulated
                (if analytical = simulated then "VERIFIED" else "MISMATCH")
                (100. *. sim.Soctam_sim.Soc_sim.utilization_in)
                sim.Soctam_sim.Soc_sim.total_idle_in
                sim.Soctam_sim.Soc_sim.total_wire_cycles;
              if analytical = simulated then 0 else 1))

(* -- check --------------------------------------------------------------- *)

let check_cmd spec arch_path width exact exhaustive sim json =
  with_soc spec (fun soc ->
      match Soctam_tam.Arch_format.load arch_path with
      | Error msg ->
          prerr_endline ("soctam: " ^ msg);
          1
      | Ok parsed ->
          let report, _ =
            Soctam_check.Certify.parsed_architecture ~check_exact:exact
              ~check_exhaustive:exhaustive ~check_simulation:sim
              ?total_width:width ~soc parsed
          in
          print_report ~json report)

(* -- lint ---------------------------------------------------------------- *)

let lint_cmd spec json =
  if Sys.file_exists spec then begin
    match Soctam_check.Certify.soc_file spec with
    | Error msg ->
        prerr_endline ("soctam: " ^ msg);
        1
    | Ok (report, _) -> print_report ~json report
  end
  else
    with_soc spec (fun soc ->
        print_report ~json (Soctam_check.Certify.soc soc))

(* -- analyze ------------------------------------------------------------- *)

(* Source-level determinism & domain-safety analysis (DESIGN.md §13):
   parse every .ml/.mli under lib/, bin/, bench/ and examples/ and
   enforce the Soctam_analysis.Rule catalog; by default additionally run
   the interprocedural Typedtree pass over the .cmt files of the last
   build. Exit 0 only when every finding is fixed, [@soctam.allow]ed or
   baselined. *)
let analyze_cmd root baseline_path json sarif syntactic call_graph prune =
  if not (Sys.file_exists (Filename.concat root "dune-project")) then begin
    Printf.eprintf
      "soctam: %s does not look like the repository root (no dune-project); \
       pass --root\n"
      root;
    1
  end
  else
    (* The committed baseline, when present, applies by default so
       `soctam analyze` and CI agree without extra flags. *)
    let baseline_file =
      match baseline_path with
      | Some path -> Some path
      | None ->
          let default = Filename.concat root "analysis.baseline" in
          if Sys.file_exists default then Some default else None
    in
    let baseline =
      match baseline_file with
      | Some path -> Soctam_analysis.Baseline.load path
      | None -> Ok Soctam_analysis.Baseline.empty
    in
    match baseline with
    | Error violations ->
        print_report ~json
          (Soctam_check.Report.make ~subject:"analyzer baseline" violations)
    | Ok baseline -> (
        let mode =
          if syntactic then Soctam_analysis.Analyze.Syntactic
          else Soctam_analysis.Analyze.Typed
        in
        let result = Soctam_analysis.Analyze.tree ~baseline ~mode ~root () in
        prerr_endline (Soctam_analysis.Analyze.summary result);
        (match (call_graph, result.Soctam_analysis.Analyze.graph) with
        | Some path, Some graph ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc
                  (Soctam_util.Json.to_string
                     (Soctam_analysis.Typed.graph_json graph));
                output_char oc '\n')
        | Some _, None ->
            prerr_endline
              "soctam: --call-graph needs the typed pass; drop --syntactic"
        | None, _ -> ());
        (match sarif with
        | None -> ()
        | Some path ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (Soctam_analysis.Sarif.to_string result)));
        match (prune, baseline_file) with
        | false, _ ->
            print_report ~json result.Soctam_analysis.Analyze.report
        | true, None ->
            prerr_endline "soctam: --prune-baseline: no baseline file to prune";
            1
        | true, Some path ->
            let stale = result.Soctam_analysis.Analyze.stale in
            let kept =
              List.filter
                (fun (e : Soctam_analysis.Baseline.entry) ->
                  not
                    (List.exists
                       (fun (s : Soctam_analysis.Baseline.entry) ->
                         s.rule = e.rule && s.path = e.path)
                       stale))
                (Soctam_analysis.Baseline.entries baseline)
            in
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc
                  (Soctam_analysis.Baseline.to_string
                     (Soctam_analysis.Baseline.of_entries kept)));
            Printf.eprintf "soctam: pruned %d stale entr%s from %s\n"
              (List.length stale)
              (if List.length stale = 1 then "y" else "ies")
              path;
            print_report ~json result.Soctam_analysis.Analyze.report)

(* -- gen ----------------------------------------------------------------- *)

let gen_cmd profile_name output itc02 =
  let profile =
    match profile_name with
    | "p21241" -> Some Soctam_soc_data.Philips.p21241
    | "p31108" -> Some Soctam_soc_data.Philips.p31108
    | "p93791" -> Some Soctam_soc_data.Philips.p93791
    | _ -> None
  in
  match profile with
  | None ->
      prerr_endline "soctam: unknown profile (p21241, p31108, p93791)";
      1
  | Some profile -> (
      let soc = Soctam_soc_data.Philips.generate profile in
      let to_string =
        if itc02 then Soctam_soc_data.Itc02_format.to_string
        else Soctam_soc_data.Soc_format.to_string
      in
      let save =
        if itc02 then Soctam_soc_data.Itc02_format.save
        else Soctam_soc_data.Soc_format.save
      in
      match output with
      | None ->
          print_string (to_string soc);
          0
      | Some path -> (
          match save path soc with
          | Ok () ->
              Format.printf "wrote %s (%a)@." path Soctam_model.Soc.pp_summary
                soc;
              0
          | Error msg ->
              prerr_endline ("soctam: " ^ msg);
              1))

(* -- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let soc_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOC" ~doc:"Benchmark name or path to a .soc file.")

let width_arg =
  Arg.(
    value & opt int 32
    & info [ "w"; "width" ] ~docv:"W" ~doc:"Total TAM width.")

let info_term =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every core.")
  in
  Term.(const info_cmd $ soc_arg $ verbose)

let wrapper_term =
  let core_id =
    Arg.(
      required
      & opt (some int) None
      & info [ "c"; "core" ] ~docv:"N" ~doc:"1-based core number.")
  in
  let layout =
    Arg.(
      value & flag
      & info [ "layout" ] ~doc:"Print every wrapper chain's composition.")
  in
  Term.(const wrapper_cmd $ soc_arg $ core_id $ width_arg $ layout)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate partitions on $(docv) parallel domains. The reported \
           architecture is identical for every value; only the wall time \
           changes. Default 1 (sequential).")

let stats_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Collect optimizer statistics (pruning counters, phase timings, \
           the tau update trajectory) and write them as JSON to $(docv), or \
           to standard output when $(docv) is omitted or '-'. A one-line \
           summary goes to standard error. With a FILE destination the \
           command's standard output is byte-identical to a run without \
           this option.")

let checkpoint_arg =
  Arg.(
    value
    & opt ~vopt:(Some "soctam.ckpt") (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a resumable checkpoint to $(docv) (default soctam.ckpt) at \
           every slice boundary, atomically. SIGINT then stops the run at \
           the next boundary with a final checkpoint on disk and exit \
           status 130; a completed run removes the file. Continue a stopped \
           run with $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 50_000
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Partition ranks per checkpoint slice: the granularity at which \
           checkpoints are written and budgets and SIGINT are honored. \
           Default 50000.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue the run checkpointed in $(docv). The checkpoint must \
           match this command's solver, SOC and search parameters. The \
           resumed run returns the same architecture and counter totals as \
           an uninterrupted one.")

let front_cache_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "front-cache" ] ~docv:"N"
        ~doc:
          "Bound the per-core wrapper Pareto-front memo cache at $(docv) \
           entries (0 disables caching). The cache only affects wall time: \
           results are byte-identical at every setting. Default 256.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"S"
        ~doc:
          "Wall-clock budget in seconds. The run stops at the next slice \
           boundary with the incumbent; with $(b,--checkpoint) the \
           truncated run is resumable. Default: no budget.")

(* One shared spec for the solver subcommands: every flag above, parsed
   into a [run_opts]. *)
let run_opts_term =
  let make ro_jobs ro_stats ro_budget ro_checkpoint ro_every ro_resume
      ro_front_cache =
    {
      ro_jobs;
      ro_stats;
      ro_budget;
      ro_checkpoint;
      ro_every;
      ro_resume;
      ro_front_cache;
    }
  in
  Term.(
    const make $ jobs_arg $ stats_arg $ budget_arg $ checkpoint_arg
    $ checkpoint_every_arg $ resume_arg $ front_cache_arg)

let certify_flag =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Run the independent certifier on the result and fail on any \
           violation.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the diagnostic report as JSON.")

(* The engine subcommands share one flag surface: the number-of-TAMs
   plan, the run options, --save-arch and --certify. An engine's caps
   decide at runtime which combinations are valid. *)
let tams_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "b"; "tams" ] ~docv:"B"
        ~doc:
          "Fix the number of TAMs (P_PAW). Required by engines that solve \
           one TAM count at a time (exhaustive, ilp); rejected by engines \
           that search the TAM count themselves (anneal).")

let max_tams_arg =
  Arg.(
    value & opt int 10
    & info [ "max-tams" ] ~docv:"B" ~doc:"TAM count ceiling for P_NPAW.")

let save_arch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-arch" ] ~docv:"FILE"
        ~doc:"Write the resulting architecture to FILE.")

let engine_term engine =
  Term.(
    const (engine_cmd engine)
    $ soc_arg $ width_arg $ tams_arg $ max_tams_arg $ run_opts_term
    $ save_arch_arg $ certify_flag)

let optimize_term = engine_term (Soctam_race.Registry.find "pe")
let pack_term = engine_term (Soctam_race.Registry.find "pack")
let exhaustive_term = engine_term (Soctam_race.Registry.find "exhaustive")
let ilp_term = engine_term (Soctam_race.Registry.find "ilp")

let anneal_term =
  let iterations =
    Arg.(
      value & opt int 100_000
      & info [ "iterations" ] ~docv:"N" ~doc:"Annealing moves.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let anneal_engine iterations seed =
    Ok
      (Soctam_anneal.Annealer.engine
         ~params:
           {
             Soctam_anneal.Annealer.default_params with
             Soctam_anneal.Annealer.iterations;
             seed = Int64.of_int seed;
           }
         ())
  in
  Term.(
    const (fun iterations seed -> engine_cmd (anneal_engine iterations seed))
    $ iterations $ seed $ soc_arg $ width_arg $ tams_arg $ max_tams_arg
    $ run_opts_term $ save_arch_arg $ certify_flag)

let race_term =
  let engines =
    Arg.(
      value & opt string "pe,pack"
      & info [ "engines" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated portfolio, in grant order, from the engine \
             registry (pe, pack, anneal, exhaustive, ilp). Default \
             'pe,pack'.")
  in
  Term.(
    const race_cmd $ soc_arg $ width_arg $ tams_arg $ max_tams_arg $ engines
    $ run_opts_term $ save_arch_arg $ certify_flag)

let compare_term = Term.(const compare_cmd $ soc_arg $ width_arg)

let schedule_term =
  let budget_pct =
    Arg.(
      value & opt int 60
      & info [ "budget-pct" ] ~docv:"PCT"
          ~doc:"Power budget as a percentage of the unconstrained peak.")
  in
  Term.(const schedule_cmd $ soc_arg $ width_arg $ budget_pct $ certify_flag)

let sweep_term =
  let from_w =
    Arg.(value & opt int 16 & info [ "from" ] ~docv:"W" ~doc:"First width.")
  in
  let to_w =
    Arg.(value & opt int 64 & info [ "to" ] ~docv:"W" ~doc:"Last width.")
  in
  let step =
    Arg.(value & opt int 8 & info [ "step" ] ~docv:"N" ~doc:"Width step.")
  in
  let tolerance =
    Arg.(
      value & opt float 5.
      & info [ "tolerance" ] ~docv:"PCT" ~doc:"Knee tolerance in percent.")
  in
  Term.(
    const sweep_cmd $ soc_arg $ from_w $ to_w $ step $ tolerance
    $ run_opts_term)

let tables_term =
  let ids =
    Arg.(
      value & opt_all string []
      & info [ "id" ] ~docv:"ID" ~doc:"Table id (repeatable); default all.")
  in
  let budget =
    Arg.(
      value & opt float 20.
      & info [ "budget" ] ~docv:"S"
          ~doc:"Exhaustive-baseline budget per cell in seconds.")
  in
  let markdown =
    Arg.(
      value & flag
      & info [ "markdown" ] ~doc:"Emit GitHub-flavoured markdown tables.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV tables.")
  in
  Term.(const tables_cmd $ ids $ budget $ markdown $ csv)

let gen_term =
  let profile =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROFILE" ~doc:"p21241, p31108 or p93791.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE.")
  in
  let itc02 =
    Arg.(
      value & flag
      & info [ "itc02" ] ~doc:"Emit the ITC'02-style hierarchical dialect.")
  in
  Term.(const gen_cmd $ profile $ output $ itc02)

let verify_term =
  let arch_path =
    Arg.(
      required
      & opt (some string) None
      & info [ "arch" ] ~docv:"FILE" ~doc:"Architecture file to verify.")
  in
  Term.(const verify_cmd $ soc_arg $ arch_path)

let check_term =
  let arch_path =
    Arg.(
      required
      & opt (some string) None
      & info [ "arch" ] ~docv:"FILE" ~doc:"Architecture file to certify.")
  in
  let width =
    Arg.(
      value
      & opt (some int) None
      & info [ "w"; "width" ] ~docv:"W"
          ~doc:"Total TAM width the architecture must partition exactly.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Also solve the claimed partition exactly and reject a time that \
             beats the proven optimum.")
  in
  let exhaustive =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Also run the exhaustive baseline over every partition with the \
             same TAM count (small SOCs only).")
  in
  let sim =
    Arg.(
      value & flag
      & info [ "sim" ] ~doc:"Also cross-check with the cycle-level simulator.")
  in
  Term.(
    const check_cmd $ soc_arg $ arch_path $ width $ exact $ exhaustive $ sim
    $ json_flag)

let analyze_term =
  let root =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Repository root to analyze (must contain dune-project).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file of acknowledged findings \
             (RULE-ID<TAB>path<TAB>justification per line). Default: \
             DIR/analysis.baseline when it exists.")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:
            "Additionally write the run as SARIF 2.1.0 to $(docv) (one \
             result per surviving finding and analyzer problem), for CI \
             diff annotation.")
  in
  let syntactic =
    Arg.(
      value & flag
      & info [ "syntactic" ]
          ~doc:
            "Run only the Parsetree rules (fast, needs no build). The \
             default --typed mode additionally runs the interprocedural \
             DOM-ESCAPE / LOCK-RAISE / ALLOC-HOT families and the \
             effect-powered EFFECT-WORKER / OUTCOME-DROP / ENGINE-CAPS / \
             TAU-DISCIPLINE families over the .cmt files of the last \
             dune build.")
  in
  let typed =
    Arg.(
      value & flag
      & info [ "typed" ]
          ~doc:
            "Run the Typedtree pass (the default; the flag exists so \
             scripts can be explicit).")
  in
  let call_graph =
    Arg.(
      value
      & opt (some string) None
      & info [ "call-graph" ] ~docv:"FILE"
          ~doc:
            "Dump the module-qualified call graph and the \
             domain-reachability set as strict JSON to $(docv).")
  in
  let prune =
    Arg.(
      value & flag
      & info [ "prune-baseline" ]
          ~doc:
            "Rewrite the baseline file in place, dropping entries that \
             match no current finding.")
  in
  let pick_mode syntactic typed =
    (* Typed is the default; with both flags the explicit --typed wins. *)
    syntactic && not typed
  in
  Term.(
    const analyze_cmd $ root $ baseline $ json_flag $ sarif
    $ (const pick_mode $ syntactic $ typed)
    $ call_graph $ prune)

let lint_term =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOC" ~doc:"Benchmark name or path to an SOC file.")
  in
  Term.(const lint_cmd $ target $ json_flag)

let cmd name term doc = Cmd.v (Cmd.info name ~doc) term

let () =
  let doc = "wrapper/TAM co-optimization for SOC testing (DATE 2002)" in
  let main =
    Cmd.group
      (Cmd.info "soctam" ~version:"1.1.0" ~doc)
      [
        cmd "info" info_term "Describe an SOC.";
        cmd "wrapper" wrapper_term "Design a test wrapper for one core (P_W).";
        cmd "optimize" optimize_term
          "Co-optimize the wrapper/TAM architecture (P_PAW / P_NPAW).";
        cmd "exhaustive" exhaustive_term
          "Run the exhaustive baseline of [8] (exact solve per partition).";
        cmd "ilp" ilp_term
          "Run the exhaustive baseline with the paper's ILP model per \
           partition (cross-check engine).";
        cmd "pack" pack_term
          "Co-optimize through the rectangle-packing engine (strip packing \
           over the per-core Pareto fronts, distilled into certified \
           test-bus schedules).";
        cmd "race" race_term
          "Race an engine portfolio on one instance under a shared pruning \
           bound, with per-engine resume tokens and first-proof \
           termination.";
        cmd "compare" compare_term
          "Compare multiplexing, daisychain, distribution and test-bus \
           architectures.";
        cmd "schedule" schedule_term
          "Build a power-constrained test schedule and draw its Gantt chart.";
        cmd "sweep" sweep_term
          "Sweep the total TAM width and report the time/pin trade-off.";
        cmd "anneal" anneal_term
          "Optimize with simulated annealing and compare to the pipeline.";
        cmd "tables" tables_term "Regenerate the paper's tables.";
        cmd "gen" gen_term "Generate a synthetic Philips-profile SOC.";
        cmd "verify" verify_term
          "Check a saved architecture against an SOC by simulation.";
        cmd "check" check_term
          "Certify a saved architecture: structural invariants, exact time \
           recomputation, lower bounds, optional exact/exhaustive/simulation \
           cross-checks.";
        cmd "lint" lint_term
          "Lint an SOC description: report every syntactic and semantic \
           problem instead of stopping at the first.";
        cmd "analyze" analyze_term
          "Statically analyze the repository's own sources: determinism \
           (DET-POLY, DET-ENTROPY), domain safety (DOM-SHARED, DOM-ESCAPE, \
           EFFECT-WORKER), lock and allocation discipline (LOCK-RAISE, \
           ALLOC-HOT), engine contracts (OUTCOME-DROP, ENGINE-CAPS, \
           TAU-DISCIPLINE), API hygiene (API-DEPRECATED) and interface \
           coverage (IFACE).";
      ]
  in
  exit (Cmd.eval' main)
