# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test test-par test-par-smoke test-resume test-race bench ci lint static-analysis analyze-sarif fmt fmt-check coverage clean

all: build

# The full tier-1 gate, in the order CI runs it: format check (a no-op
# without ocamlformat), strict-warning build, test suite (which itself
# depends on the repo-analyzes-clean gate via the @runtest alias), the
# parallel-scheduler smoke pass, and the standalone analyzer pass.
ci: fmt-check build test test-par-smoke test-race static-analysis

build:
	dune build @all

test:
	dune runtest

# Parallel determinism harness (test/test_parallel.ml): seeded qcheck
# properties asserting jobs=1 and jobs=N return byte-identical
# architectures, the work-stealing scheduler properties, and the
# jobs=4-vs-jobs=1 perf regression gate. Slow (spawns domains
# thousands of times), hence gated.
test-par:
	SOCTAM_SLOW_TESTS=1 dune build @runtest-slow

# The same harness at a twentieth of the iteration count (~1s): every
# scheduler path on every CI pass; the full sweep stays in test-par.
test-par-smoke:
	SOCTAM_SLOW_TESTS=1 SOCTAM_PAR_SMOKE=1 dune build @runtest-slow

# Run-lifecycle suite only (test/test_checkpoint.ml): checkpoint
# round-trips, corruption/truncation fuzz, and the kill-and-resume
# determinism properties from DESIGN.md §12.
test-resume: build
	dune exec test/test_main.exe -- test checkpoint

# Portfolio-racer suite only (test/test_race.ml): kill-and-resume at
# every slice boundary, jobs=1 vs jobs=4 byte-identity, the
# never-worse-than-best-solo property replayed against the committed
# 21-point engine-comparison grid, and first-proof termination. Runs
# from the build tree because the grid test reads data/pack_table.json
# relative to the test directory (the `dune runtest` convention).
test-race: build
	cd _build/default/test && ./test_main.exe test race

bench:
	dune exec bench/main.exe

# Static checks: the strict-warning build (see the root `dune` env
# stanza), the repo's own input lint over every built-in SOC, the
# source-level analyzer (DESIGN.md §13), and the ocamlformat check
# when the binary is installed (it is optional: the .ocamlformat
# profile is committed, the tool may not be).
lint: build static-analysis
	dune exec bin/soctam.exe -- lint d695
	dune exec bin/soctam.exe -- lint p21241
	dune exec bin/soctam.exe -- lint p31108
	dune exec bin/soctam.exe -- lint p93791
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Source-level determinism & domain-safety analysis: the syntactic
# families (DET-POLY, DET-ENTROPY, DOM-SHARED, API-DEPRECATED, IFACE)
# plus the Typedtree families (DOM-ESCAPE, LOCK-RAISE, ALLOC-HOT and
# the effect-inference families EFFECT-WORKER, OUTCOME-DROP,
# ENGINE-CAPS, TAU-DISCIPLINE) over lib/, bin/, bench/ and examples/,
# gated by analysis.baseline. The @lint-src alias builds @check first
# so every file has a .cmt and the typed pass covers the whole tree.
# Fails on any non-baselined finding.
static-analysis:
	dune build @lint-src

# The same run rendered as SARIF 2.1.0 into analysis.sarif, for code
# scanning UIs (GitHub code scanning ingests this file directly).
# Exit status still reflects the findings, so it can serve as a gate.
analyze-sarif:
	dune build @check bin/soctam.exe
	dune exec bin/soctam.exe -- analyze --root . --sarif analysis.sarif

fmt:
	dune build @fmt --auto-promote

# Format check alone (lint also runs it): a no-op with a note when
# ocamlformat is not installed, so CI images without the tool pass.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Line coverage of the search core (lib/core + lib/partition, the only
# instrumented libraries) over the tier-1 suite. Requires bisect_ppx;
# the instrumentation stanzas are inert without --instrument-with, so
# plain builds never need it.
coverage:
	@if ! command -v bisect-ppx-report >/dev/null 2>&1; then \
	  echo "bisect_ppx not installed (opam install bisect_ppx); skipping"; \
	else \
	  find . -name '*.coverage' -delete && \
	  dune runtest --force --instrument-with bisect_ppx && \
	  bisect-ppx-report html --tree -o _coverage \
	    --coverage-path _build/default && \
	  bisect-ppx-report summary --coverage-path _build/default && \
	  echo "report: _coverage/index.html"; \
	fi

clean:
	dune clean
